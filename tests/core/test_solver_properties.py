"""Randomized metamorphic properties of the LCMSR solvers.

Rather than pinning outputs on hand-built examples, these tests generate seeded
random instances (networks, weights, keyword assignments) and assert relations
that must hold *between* solver runs:

* **Budget monotonicity** — enlarging ``Q.∆`` never hurts the optimum. The Exact
  solver must be exactly monotone; Greedy and TGEN are asserted monotone
  empirically (deterministic seeds — a regression here means a behaviour change,
  not flakiness); APP only carries a (5 + ε) approximation guarantee, so its
  monotonicity is asserted up to that factor (strict monotonicity is *not* a
  property of APP — see the bound below).
* **Keyword-set monotonicity** — under match-based weights (an object contributes
  iff it contains a query keyword), removing a keyword can only shrink node
  weights pointwise, so the optimal score never increases.
* **Feasibility invariants** — every returned region respects the length budget,
  is a connected subgraph of the window, stays inside ``Q.Λ`` and reports a
  weight equal to the sum of its nodes' weights.
* **Backend identity** — dict-backed and CSR-backed instances produce identical
  regions under the same seeds (the randomized counterpart of
  ``test_backend_parity.py``).

All randomness is seeded: each failure is reproducible from the test id alone.
"""

from __future__ import annotations

import random
from typing import Dict, List

import pytest

from repro.core.app import APPSolver
from repro.core.exact import ExactSolver
from repro.core.greedy import GreedySolver
from repro.core.instance import ProblemInstance, build_instance
from repro.core.query import LCMSRQuery
from repro.core.tgen import TGENSolver
from repro.network.builders import grid_network, random_geometric_network
from repro.network.compact import CompactNetwork
from repro.network.subgraph import Rectangle

SEEDS = [3, 11, 27]
DELTAS = [250.0, 500.0, 900.0, 1400.0]

# APP's quality guarantee: weight >= OPT / (5 + eps). Monotonicity therefore only
# holds up to that factor; 6.0 is conservative for the default solver parameters.
APP_GUARANTEE_FACTOR = 6.0

KEYWORD_POOL = ["alpha", "beta", "gamma", "delta_kw", "epsilon"]


@pytest.fixture(params=["dict", "dense"])
def backend(request):
    """Run the whole harness under both solver substrates.

    The dense backend is a representation change with a byte-identity
    contract, so every metamorphic property that holds for the dict reference
    must hold verbatim for it.
    """
    return request.param


@pytest.fixture(params=["on", "off"])
def pruning(request):
    """Run the monotonicity suite under both pruning policies.

    Bound-based pruning is skip-only (byte-identical results — see
    ``test_pruning_parity.py``), so every metamorphic property must hold
    verbatim with the skips armed.
    """
    return request.param


def _network_for(seed: int):
    return random_geometric_network(num_nodes=80, extent=2000.0, seed=seed)


def _random_weights(network, seed: int, fraction: float = 0.5) -> Dict[int, float]:
    rng = random.Random(seed)
    return {
        node_id: round(rng.uniform(0.1, 4.0), 3)
        for node_id in network.node_ids()
        if rng.random() < fraction
    }


def _instance(network, weights, delta, region=None, backend="dict",
              pruning="auto") -> ProblemInstance:
    query = LCMSRQuery.create(["kw"], delta=delta, region=region)
    instance = build_instance(network, query, node_weights=weights)
    return instance.with_backend(backend).with_pruning(pruning)


def _keyword_assignment(network, seed: int) -> Dict[int, List[str]]:
    """Give ~60% of the nodes a random 1-2 keyword description."""
    rng = random.Random(seed)
    assignment: Dict[int, List[str]] = {}
    for node_id in network.node_ids():
        if rng.random() < 0.6:
            assignment[node_id] = rng.sample(KEYWORD_POOL, rng.randint(1, 2))
    return assignment


def _match_weights(
    assignment: Dict[int, List[str]], keywords: List[str]
) -> Dict[int, float]:
    """Match-based weights: a node scores 1 iff it carries any query keyword.

    Removing a keyword shrinks these weights pointwise, which is what makes the
    keyword-removal property sound (TF-IDF weights are query-normalised and do
    NOT have this property).
    """
    keyword_set = set(keywords)
    return {
        node_id: 1.0
        for node_id, terms in assignment.items()
        if keyword_set.intersection(terms)
    }


class TestBudgetMonotonicity:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_exact_is_monotone_in_delta(self, seed, backend, pruning):
        # Tiny instances: Exact enumerates, so the window must stay small.
        network = grid_network(4, 4, spacing=100.0, jitter=15.0,
                               rng=random.Random(seed))
        weights = _random_weights(network, seed, fraction=0.7)
        solver = ExactSolver(max_nodes=16)
        previous = -1.0
        for delta in (120.0, 250.0, 450.0, 800.0):
            score = solver.solve(_instance(network, weights, delta, backend=backend,
                      pruning=pruning)).weight
            assert score >= previous - 1e-12, (
                f"Exact got worse with a larger budget at delta={delta}"
            )
            previous = score

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("make_solver", [GreedySolver, TGENSolver],
                             ids=["greedy", "tgen"])
    def test_heuristics_are_monotone_in_delta(self, seed, make_solver, backend,
                                               pruning):
        network = _network_for(seed)
        weights = _random_weights(network, seed)
        solver = make_solver()
        previous = -1.0
        for delta in DELTAS:
            score = solver.solve(_instance(network, weights, delta, backend=backend,
                      pruning=pruning)).weight
            assert score >= previous - 1e-9, (
                f"{solver.__class__.__name__} got worse with a larger budget "
                f"at delta={delta} (seed {seed})"
            )
            previous = score

    @pytest.mark.parametrize("seed", SEEDS)
    def test_app_is_monotone_up_to_its_guarantee(self, seed, backend, pruning):
        network = _network_for(seed)
        weights = _random_weights(network, seed)
        solver = APPSolver()
        scores = [
            solver.solve(_instance(network, weights, delta, backend=backend,
                      pruning=pruning)).weight
            for delta in DELTAS
        ]
        for smaller, larger in zip(scores, scores[1:]):
            assert larger * APP_GUARANTEE_FACTOR >= smaller - 1e-9, (
                "APP fell below its approximation guarantee when the budget grew"
            )


class TestKeywordMonotonicity:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_removing_a_keyword_never_increases_the_optimum(self, seed, backend,
                                                            pruning):
        network = grid_network(4, 4, spacing=100.0, jitter=10.0,
                               rng=random.Random(seed + 100))
        assignment = _keyword_assignment(network, seed)
        solver = ExactSolver(max_nodes=16)
        keywords = list(KEYWORD_POOL)
        full = solver.solve(
            _instance(network, _match_weights(assignment, keywords), 500.0,
                      backend=backend,
                      pruning=pruning)
        ).weight
        for removed in keywords:
            reduced_keywords = [k for k in keywords if k != removed]
            reduced = solver.solve(
                _instance(network, _match_weights(assignment, reduced_keywords), 500.0,
                          backend=backend,
                      pruning=pruning)
            ).weight
            assert reduced <= full + 1e-12, (
                f"dropping keyword {removed!r} increased the optimal score"
            )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_heuristics_never_beat_full_keyword_exact_optimum(self, seed, backend,
                                                              pruning):
        # The heuristics run on pointwise-smaller weights, so even they can never
        # exceed the full-keyword-set *exact* optimum.
        network = grid_network(4, 4, spacing=100.0, jitter=10.0,
                               rng=random.Random(seed + 200))
        assignment = _keyword_assignment(network, seed)
        optimum = ExactSolver(max_nodes=16).solve(
            _instance(network, _match_weights(assignment, KEYWORD_POOL), 500.0,
                      backend=backend,
                      pruning=pruning)
        ).weight
        for solver in (GreedySolver(), TGENSolver(), APPSolver()):
            for removed in KEYWORD_POOL[:2]:
                reduced_keywords = [k for k in KEYWORD_POOL if k != removed]
                score = solver.solve(
                    _instance(network, _match_weights(assignment, reduced_keywords),
                              500.0, backend=backend,
                      pruning=pruning)
                ).weight
                assert score <= optimum + 1e-9


class TestFeasibilityInvariants:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize(
        "make_solver",
        [GreedySolver, TGENSolver, APPSolver],
        ids=["greedy", "tgen", "app"],
    )
    def test_regions_respect_budget_window_and_connectivity(self, seed, make_solver,
                                                            backend):
        network = _network_for(seed)
        weights = _random_weights(network, seed)
        window = Rectangle(200.0, 200.0, 1700.0, 1700.0)
        for delta in (400.0, 900.0):
            instance = _instance(network, weights, delta, region=window,
                                 backend=backend)
            result = make_solver().solve(instance)
            region = result.region
            if region.is_empty:
                continue
            # Budget.
            assert region.length <= delta + 1e-9
            edge_sum = sum(network.edge_length(u, v) for u, v in region.edges)
            assert edge_sum == pytest.approx(region.length, abs=1e-9)
            # Window containment.
            for node_id in region.nodes:
                x, y = network.coords(node_id)
                assert window.contains(x, y)
            # Weight consistency.
            assert region.weight == pytest.approx(
                sum(weights.get(node_id, 0.0) for node_id in region.nodes), abs=1e-9
            )
            # Connectivity over the region's own edges.
            adjacency: Dict[int, List[int]] = {node_id: [] for node_id in region.nodes}
            for u, v in region.edges:
                assert u in region.nodes and v in region.nodes
                adjacency[u].append(v)
                adjacency[v].append(u)
            start = next(iter(region.nodes))
            seen = {start}
            frontier = [start]
            while frontier:
                for neighbor in adjacency[frontier.pop()]:
                    if neighbor not in seen:
                        seen.add(neighbor)
                        frontier.append(neighbor)
            assert seen == set(region.nodes), "returned region is not connected"

    @pytest.mark.parametrize("seed", SEEDS)
    def test_exact_invariants_on_tiny_windows(self, seed, backend):
        network = grid_network(4, 4, spacing=100.0, jitter=15.0,
                               rng=random.Random(seed + 300))
        weights = _random_weights(network, seed, fraction=0.7)
        delta = 350.0
        instance = _instance(network, weights, delta, backend=backend)
        result = ExactSolver(max_nodes=16).solve(instance)
        if not result.region.is_empty:
            assert result.region.length <= delta + 1e-9
            assert result.region.weight == pytest.approx(
                sum(weights.get(n, 0.0) for n in result.region.nodes), abs=1e-9
            )
        # No heuristic may beat the exact optimum on the same instance.
        for solver in (GreedySolver(), TGENSolver(), APPSolver()):
            assert solver.solve(instance).weight <= result.weight + 1e-9


class TestBackendIdentity:
    @staticmethod
    def _assert_same(result_a, result_b):
        assert result_a.region.nodes == result_b.region.nodes
        assert result_a.region.edges == result_b.region.edges
        assert result_a.length == pytest.approx(result_b.length, abs=1e-12)
        assert result_a.weight == pytest.approx(result_b.weight, abs=1e-12)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_dict_and_csr_backends_stay_identical(self, seed):
        network = _network_for(seed)
        weights = _random_weights(network, seed)
        frozen = CompactNetwork.from_network(network)
        window = Rectangle(150.0, 150.0, 1800.0, 1800.0)
        for delta in (500.0, 1100.0):
            for region in (None, window):
                query = LCMSRQuery.create(["kw"], delta=delta, region=region)
                dict_instance = build_instance(network, query, node_weights=weights)
                csr_instance = build_instance(frozen, query, node_weights=weights)
                for solver in (GreedySolver(), TGENSolver(), APPSolver()):
                    reference = solver.solve(dict_instance)
                    self._assert_same(reference, solver.solve(csr_instance))
                    # The dense substrate must coincide on BOTH graph backends.
                    self._assert_same(
                        reference, solver.solve(dict_instance.with_backend("dense"))
                    )
                    self._assert_same(
                        reference, solver.solve(csr_instance.with_backend("dense"))
                    )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_topk_backend_identity(self, seed):
        network = _network_for(seed + 50)
        weights = _random_weights(network, seed + 50)
        frozen = CompactNetwork.from_network(network)
        query = LCMSRQuery.create(["kw"], delta=700.0, k=3)
        dict_instance = build_instance(network, query, node_weights=weights)
        csr_instance = build_instance(frozen, query, node_weights=weights)
        for solver in (GreedySolver(), TGENSolver()):
            topk_dict = solver.solve_topk(dict_instance, k=3)
            for other in (
                solver.solve_topk(csr_instance, k=3),
                solver.solve_topk(dict_instance.with_backend("dense"), k=3),
                solver.solve_topk(csr_instance.with_backend("dense"), k=3),
            ):
                assert len(topk_dict.results) == len(other.results)
                for result_d, result_c in zip(topk_dict.results, other.results):
                    self._assert_same(result_d, result_c)


class TestTopKPruningInvariant:
    """Pruned top-k must equal exhaustive enumeration, rank for rank."""

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("k", [1, 3, 5])
    def test_pruned_exact_topk_matches_exhaustive_enumeration(self, seed, k, backend):
        # pruning="off" makes ExactSolver enumerate every connected subset, so
        # comparing against it pins the branch-and-bound top-k to the full
        # enumeration: same k results, same order, bit-equal scores.
        network = grid_network(4, 4, spacing=100.0, jitter=15.0,
                               rng=random.Random(seed + 400))
        weights = _random_weights(network, seed, fraction=0.7)
        solver = ExactSolver(max_nodes=16)
        instance = _instance(network, weights, 350.0, backend=backend)
        pruned = solver.solve_topk(instance.with_pruning("on"), k=k)
        exhaustive = solver.solve_topk(instance.with_pruning("off"), k=k)
        assert len(pruned.results) == len(exhaustive.results)
        for result_p, result_e in zip(pruned.results, exhaustive.results):
            assert result_p.region.nodes == result_e.region.nodes
            assert result_p.region.edges == result_e.region.edges
            assert result_p.weight == result_e.weight  # bit-equal
            assert result_p.length == result_e.length

    @pytest.mark.parametrize("seed", SEEDS)
    def test_pruned_heuristic_topk_is_identical(self, seed, backend):
        network = _network_for(seed + 70)
        weights = _random_weights(network, seed + 70)
        for solver in (GreedySolver(), TGENSolver()):
            instance = _instance(network, weights, 700.0, backend=backend)
            pruned = solver.solve_topk(instance.with_pruning("on"), k=3)
            reference = solver.solve_topk(instance.with_pruning("off"), k=3)
            assert len(pruned.results) == len(reference.results)
            for result_p, result_r in zip(pruned.results, reference.results):
                assert result_p.region.nodes == result_r.region.nodes
                assert result_p.weight == result_r.weight
