"""Admissibility of the cell upper bounds behind :mod:`repro.core.bounds`.

Every bound an :class:`~repro.core.bounds.UpperBoundIndex` exposes must be
**admissible** — greater than or equal to the true best achievable value it
bounds, for every query. The pruning layers (the instance builder's zero-mass
window skip, Exact's branch-and-bound, TGEN's dead-edge skip) rely on this to
stay skip-only; ``test_pruning_parity.py`` checks the end-to-end consequence,
this module checks the bounds themselves:

* on seeded random datasets, every window / δ-ball / edge-set / partial-region
  bound dominates the corresponding true value computed from the unbounded
  weight pipeline, across all three scoring modes,
* degenerate geometries behave (empty corpus, a single object, every object
  piled onto one node, δ-balls straddling cell boundaries),
* the exact-zero licence holds: a bound of ``0.0`` really means *no* positive
  mass (the guard factor preserves exact zeros),
* :func:`~repro.core.bounds.positive_suffix_potentials` is exactly monotone
  and exactly zero iff no positive tail remains.
"""

from __future__ import annotations

import random

import pytest

from repro.core.bounds import UpperBoundIndex, positive_suffix_potentials
from repro.datasets.ny import build_ny_like
from repro.datasets.queries import generate_workload
from repro.exceptions import IndexError_
from repro.network.builders import grid_network
from repro.network.subgraph import Rectangle
from repro.objects.corpus import ObjectCorpus
from repro.objects.geoobject import GeoTextualObject
from repro.service.bundle import IndexBundle
from repro.textindex.relevance import ScoringMode

SEED = 29
MODES = [
    ScoringMode.TEXT_RELEVANCE,
    ScoringMode.RATING_IF_MATCH,
    ScoringMode.LANGUAGE_MODEL,
]


@pytest.fixture(scope="module")
def dataset():
    return build_ny_like(
        rows=12, cols=12, block_size=120.0, num_objects=300, num_clusters=5, seed=SEED
    )


@pytest.fixture(scope="module", params=MODES, ids=lambda mode: mode.value)
def pipeline(request, dataset):
    bundle = IndexBundle.build(
        dataset.network, dataset.corpus, grid_resolution=16, scoring_mode=request.param
    )
    return bundle.weight_pipeline()


@pytest.fixture(scope="module")
def keyword_sets(dataset):
    workload = generate_workload(
        dataset, num_queries=6, num_keywords=3, delta=700.0, area_km2=0.5, seed=SEED
    )
    return [query.keywords for query in workload]


def _random_windows(rng, extent=1440.0, count=8):
    windows = []
    for _ in range(count):
        x0 = rng.uniform(-100.0, extent)
        y0 = rng.uniform(-100.0, extent)
        windows.append(
            Rectangle(x0, y0, x0 + rng.uniform(50.0, 600.0), y0 + rng.uniform(50.0, 600.0))
        )
    return windows


class TestWindowBounds:
    def test_window_mass_dominates_true_in_window_mass(self, pipeline, keyword_sets):
        rng = random.Random(SEED)
        bounds = pipeline.bounds
        for keywords in keyword_sets:
            for window in _random_windows(rng):
                true_mass = sum(pipeline.node_weights(keywords, window=window).values())
                assert bounds.window_mass_bound(window) >= true_mass, (
                    keywords,
                    window,
                )

    def test_window_max_dominates_every_in_window_node_weight(
        self, pipeline, keyword_sets
    ):
        rng = random.Random(SEED + 1)
        index = pipeline.index
        bounds = pipeline.bounds
        coords = {
            int(index.node_ids[pos]): (float(index.node_x[pos]), float(index.node_y[pos]))
            for pos in range(len(index.node_ids))
        }
        for keywords in keyword_sets:
            weights = pipeline.node_weights(keywords)
            for window in _random_windows(rng):
                cap = bounds.window_max_bound(window)
                for node_id, weight in weights.items():
                    x, y = coords[node_id]
                    if window.contains(x, y):
                        assert cap >= weight, (keywords, window, node_id)

    def test_window_counts_dominate_true_counts(self, pipeline):
        rng = random.Random(SEED + 2)
        index = pipeline.index
        bounds = pipeline.bounds
        # Postings are stored CSR-by-term, so per-object posting counts come
        # from counting each object row's appearances in post_rows.
        postings_per_object = [0] * index.num_objects
        for row in index.post_rows:
            postings_per_object[int(row)] += 1
        for window in _random_windows(rng):
            true_objects = 0
            true_postings = 0
            for row in range(index.num_objects):
                if int(index.obj_node_pos[row]) < 0:
                    continue
                if window.contains(float(index.obj_x[row]), float(index.obj_y[row])):
                    true_objects += 1
                    true_postings += postings_per_object[row]
            assert bounds.window_object_count(window) >= true_objects
            assert bounds.window_posting_count(window) >= true_postings


class TestBallAndEdgeBounds:
    def test_ball_mass_dominates_reachable_node_mass(self, pipeline, keyword_sets):
        # Radii around 1.5 cells and centers jittered across the grid make the
        # balls straddle cell boundaries — exactly where an off-by-one in the
        # covering span would surface.
        rng = random.Random(SEED + 3)
        index = pipeline.index
        bounds = pipeline.bounds
        radii = [0.4 * bounds.cell_w, 1.5 * bounds.cell_w, 3.2 * bounds.cell_w]
        for keywords in keyword_sets:
            weights = pipeline.node_weights(keywords)
            for _ in range(6):
                cx = rng.uniform(0.0, 1440.0)
                cy = rng.uniform(0.0, 1440.0)
                for radius in radii:
                    true_mass = 0.0
                    for pos in range(len(index.node_ids)):
                        dx = float(index.node_x[pos]) - cx
                        dy = float(index.node_y[pos]) - cy
                        if dx * dx + dy * dy <= radius * radius:
                            true_mass += weights.get(int(index.node_ids[pos]), 0.0)
                    assert bounds.ball_mass_bound(cx, cy, radius) >= true_mass

    def test_edge_set_mass_dominates_endpoint_mass(self, pipeline, keyword_sets):
        rng = random.Random(SEED + 4)
        index = pipeline.index
        bounds = pipeline.bounds
        positions = list(range(len(index.node_ids)))
        for keywords in keyword_sets[:3]:
            weights = pipeline.node_weights(keywords)
            sample = rng.sample(positions, min(24, len(positions)))
            endpoints = [
                (float(index.node_x[pos]), float(index.node_y[pos])) for pos in sample
            ]
            true_mass = sum(
                weights.get(int(index.node_ids[pos]), 0.0) for pos in sample
            )
            assert bounds.edge_set_mass_bound(endpoints) >= true_mass

    def test_partial_region_bound_dominates_any_completion(self, pipeline, keyword_sets):
        rng = random.Random(SEED + 5)
        index = pipeline.index
        bounds = pipeline.bounds
        keywords = keyword_sets[0]
        weights = pipeline.node_weights(keywords)
        for _ in range(6):
            cx = rng.uniform(100.0, 1300.0)
            cy = rng.uniform(100.0, 1300.0)
            budget = rng.uniform(50.0, 500.0)
            weight_so_far = rng.uniform(0.0, 10.0)
            extension = 0.0
            for pos in range(len(index.node_ids)):
                dx = float(index.node_x[pos]) - cx
                dy = float(index.node_y[pos]) - cy
                if dx * dx + dy * dy <= budget * budget:
                    extension += weights.get(int(index.node_ids[pos]), 0.0)
            assert (
                bounds.partial_region_bound(weight_so_far, cx, cy, budget)
                >= weight_so_far + extension
            )


class TestExactZeroLicence:
    """A bound of exactly 0.0 licences a skip; it must imply zero true mass."""

    def test_zero_window_mass_implies_zero_weights(self, pipeline, keyword_sets):
        rng = random.Random(SEED + 6)
        bounds = pipeline.bounds
        checked = 0
        for keywords in keyword_sets:
            for window in _random_windows(rng, count=20):
                if bounds.window_mass_bound(window) == 0.0:
                    checked += 1
                    assert pipeline.node_weights(keywords, window=window) == {}
        # The jittered windows reach off-extent space, so some must hit zero.
        assert checked > 0

    def test_zero_rating_objects_keep_an_exactly_zero_bound(self):
        # The guard factor must preserve exact zeros (0 * guard == 0): a window
        # full of matched objects whose ratings are all zero has zero rating
        # mass, and rating mode's bound must say so exactly.
        network = grid_network(4, 4, spacing=100.0)
        corpus = ObjectCorpus(
            [
                GeoTextualObject.create(i, 50.0 + 40.0 * i, 50.0, ["cafe"], rating=0.0)
                for i in range(5)
            ]
        )
        bundle = IndexBundle.build(
            network, corpus, grid_resolution=4, scoring_mode=ScoringMode.RATING_IF_MATCH
        )
        bounds = bundle.weight_pipeline().bounds
        everywhere = Rectangle(-50.0, -50.0, 400.0, 400.0)
        assert bounds.window_mass_bound(everywhere) == 0.0
        assert bounds.window_max_bound(everywhere) == 0.0


class TestDegenerateGeometries:
    def test_empty_corpus_bounds_are_zero(self):
        # The grid index refuses empty corpora, so build the columnar layer
        # directly — the bound aggregates must still come out well-formed.
        from repro.objects.mapping import map_objects_to_network
        from repro.textindex.columnar import ColumnarScoringIndex, WeightPipeline

        network = grid_network(3, 3, spacing=100.0)
        corpus = ObjectCorpus()
        mapping = map_objects_to_network(network, corpus)
        index = ColumnarScoringIndex.build(corpus, mapping, network.coords)
        bounds = WeightPipeline(index, ScoringMode.TEXT_RELEVANCE).bounds
        window = Rectangle(-1000.0, -1000.0, 1000.0, 1000.0)
        assert bounds.window_mass_bound(window) == 0.0
        assert bounds.window_max_bound(window) == 0.0
        assert bounds.ball_mass_bound(0.0, 0.0, 1e6) == 0.0
        assert bounds.window_object_count(window) == 0
        assert bounds.window_posting_count(window) == 0

    @pytest.mark.parametrize("mode", MODES, ids=lambda mode: mode.value)
    def test_single_object_bounds_dominate_its_weight(self, mode):
        network = grid_network(3, 3, spacing=100.0)
        corpus = ObjectCorpus(
            [GeoTextualObject.create(0, 105.0, 95.0, ["cafe", "bar"], rating=2.5)]
        )
        bundle = IndexBundle.build(network, corpus, grid_resolution=4, scoring_mode=mode)
        pipeline = bundle.weight_pipeline()
        bounds = pipeline.bounds
        weights = pipeline.node_weights(["cafe"])
        true_mass = sum(weights.values())
        assert true_mass > 0.0
        window = Rectangle(0.0, 0.0, 250.0, 250.0)
        assert bounds.window_mass_bound(window) >= true_mass
        assert bounds.window_max_bound(window) >= max(weights.values())
        assert bounds.ball_mass_bound(100.0, 100.0, 50.0) >= true_mass

    @pytest.mark.parametrize("mode", MODES, ids=lambda mode: mode.value)
    def test_all_objects_on_one_node(self, mode):
        # Every object lands on the same nearest node: the per-node potential
        # concentrates in one cell, and both the mass and the max bound must
        # still cover the aggregate weight there.
        network = grid_network(3, 3, spacing=100.0)
        corpus = ObjectCorpus(
            [
                GeoTextualObject.create(i, 1.0 + 0.1 * i, 1.0, ["cafe"], rating=1.0 + i)
                for i in range(6)
            ]
        )
        bundle = IndexBundle.build(network, corpus, grid_resolution=4, scoring_mode=mode)
        pipeline = bundle.weight_pipeline()
        bounds = pipeline.bounds
        weights = pipeline.node_weights(["cafe"])
        assert len(weights) == 1
        [(node_id, weight)] = weights.items()
        assert node_id == 0
        tight = Rectangle(-10.0, -10.0, 10.0, 10.0)
        assert bounds.window_mass_bound(tight) >= weight
        assert bounds.window_max_bound(tight) >= weight
        assert bounds.ball_mass_bound(0.0, 0.0, 5.0) >= weight

    def test_unknown_scoring_mode_is_rejected(self, dataset):
        bundle = IndexBundle.build(dataset.network, dataset.corpus, grid_resolution=8)
        with pytest.raises(IndexError_, match="no bound aggregates"):
            UpperBoundIndex.from_columnar(bundle.weight_pipeline().index, "nonsense")


class TestPositiveSuffixPotentials:
    def test_suffix_is_exactly_monotone_and_exact_on_random_inputs(self):
        rng = random.Random(SEED + 7)
        for _ in range(50):
            weights = [rng.uniform(-5.0, 5.0) for _ in range(rng.randint(0, 30))]
            suffix = positive_suffix_potentials(weights)
            assert len(suffix) == len(weights) + 1
            assert suffix[-1] == 0.0
            for i in range(len(weights)):
                # Exact recurrence, and exact monotonicity (fl(a+b) >= b for a >= 0).
                assert suffix[i] == suffix[i + 1] + max(weights[i], 0.0)
                assert suffix[i] >= suffix[i + 1]

    def test_suffix_is_zero_exactly_when_no_positive_tail_remains(self):
        weights = [2.0, -1.0, 0.0, 3.0, -4.0, 0.0]
        suffix = positive_suffix_potentials(weights)
        for i in range(len(weights) + 1):
            has_positive_tail = any(w > 0.0 for w in weights[i:])
            assert (suffix[i] > 0.0) == has_positive_tail

    def test_all_nonpositive_weights_give_the_zero_vector(self):
        suffix = positive_suffix_potentials([-1.0, 0.0, -2.5])
        assert suffix == [0.0, 0.0, 0.0, 0.0]
