"""Tests for the exact brute-force oracle."""

from __future__ import annotations

import itertools

import pytest

from repro.core import LCMSRQuery, build_instance
from repro.core.exact import ExactSolver, _connected_subsets, _induced_mst
from repro.exceptions import SolverError
from repro.network.builders import grid_network, paper_example_network, path_network

from tests.conftest import (
    PAPER_EXAMPLE_DELTA,
    PAPER_EXAMPLE_OPTIMUM_NODES,
    PAPER_EXAMPLE_OPTIMUM_WEIGHT,
    PAPER_EXAMPLE_WEIGHTS,
)


def brute_force_connected_subsets(graph):
    """Reference enumeration by powerset + connectivity check."""
    nodes = sorted(graph.node_ids())
    found = set()
    for size in range(1, len(nodes) + 1):
        for combo in itertools.combinations(nodes, size):
            sub = graph.subgraph(combo)
            if sub.is_connected():
                found.add(frozenset(combo))
    return found


class TestEnumeration:
    def test_connected_subsets_match_powerset_on_grid(self):
        graph = grid_network(2, 3, spacing=1.0)
        enumerated = list(_connected_subsets(graph, sorted(graph.node_ids())))
        assert len(enumerated) == len(set(enumerated)), "subsets must be produced once"
        assert set(enumerated) == brute_force_connected_subsets(graph)

    def test_connected_subsets_match_powerset_on_paper_graph(self):
        graph = paper_example_network()
        enumerated = set(_connected_subsets(graph, sorted(graph.node_ids())))
        assert enumerated == brute_force_connected_subsets(graph)

    def test_induced_mst(self):
        graph = paper_example_network()
        length, edges = _induced_mst(graph, frozenset({2, 5, 6}))
        assert length == pytest.approx(1.5 + 2.8)
        assert len(edges) == 2

    def test_induced_mst_disconnected_returns_none(self):
        graph = paper_example_network()
        assert _induced_mst(graph, frozenset({1, 4})) is None


class TestSolve:
    def test_paper_example(self, paper_instance):
        result = ExactSolver().solve(paper_instance)
        assert result.region.nodes == PAPER_EXAMPLE_OPTIMUM_NODES
        assert result.weight == pytest.approx(PAPER_EXAMPLE_OPTIMUM_WEIGHT)
        assert result.region.satisfies(PAPER_EXAMPLE_DELTA)

    def test_rejects_large_instances(self):
        network = grid_network(6, 6, spacing=1.0)
        query = LCMSRQuery.create(["t"], delta=3.0)
        instance = build_instance(network, query, node_weights={0: 1.0})
        with pytest.raises(SolverError):
            ExactSolver(max_nodes=20).solve(instance)

    def test_empty_instance(self, paper_graph):
        query = LCMSRQuery.create(["t"], delta=3.0)
        instance = build_instance(paper_graph, query, node_weights={})
        assert ExactSolver().solve(instance).is_empty

    def test_tie_breaking_prefers_shorter_region(self):
        # Two single-node optima with equal weight: either is fine, but the result
        # must not pay any length for it.
        network = path_network(3, edge_length=5.0)
        weights = {0: 1.0, 2: 1.0}
        query = LCMSRQuery.create(["t"], delta=4.0)
        instance = build_instance(network, query, node_weights=weights)
        result = ExactSolver().solve(instance)
        assert result.weight == pytest.approx(1.0)
        assert result.length == 0.0

    def test_optimal_uses_zero_weight_connector(self):
        # The two weighted nodes can only be joined through an unweighted middle node.
        network = path_network(3, edge_length=1.0)
        weights = {0: 1.0, 2: 1.0}
        query = LCMSRQuery.create(["t"], delta=2.0)
        instance = build_instance(network, query, node_weights=weights)
        result = ExactSolver().solve(instance)
        assert result.region.nodes == frozenset({0, 1, 2})
        assert result.weight == pytest.approx(2.0)

    def test_topk_distinct_and_sorted(self, paper_instance):
        topk = ExactSolver().solve_topk(paper_instance, k=3)
        assert len(topk) == 3
        weights = topk.weights()
        assert weights == sorted(weights, reverse=True)
        node_sets = [r.region.nodes for r in topk]
        assert len(set(node_sets)) == 3
