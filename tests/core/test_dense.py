"""Round-trip tests for the dense problem-instance substrate.

The substrate (:class:`repro.core.dense.DenseInstance`) is a pure representation
change, so these tests pin the three contracts everything downstream relies on:

* **Renumbering** — global ↔ local id mapping is a bijection that follows the
  window graph's iteration order, and the CSR arrays are shared (not copied)
  when the source is a frozen snapshot.
* **Dict-order replay** — ``weights_dict()`` re-materialises a dict whose items
  (values *and* iteration order) equal the source weight dict, and the
  aggregates (σmax, total weight) are bit-equal to the reference computations.
* **Pickle** — a substrate round-trips through pickle into an equivalent one
  (same arrays, same dict view, same solver results).
"""

from __future__ import annotations

import pickle
import random

import numpy as np
import pytest

from repro.core.dense import DenseInstance
from repro.core.greedy import GreedySolver
from repro.core.instance import build_instance
from repro.core.query import LCMSRQuery
from repro.core.tgen import TGENSolver
from repro.exceptions import QueryError
from repro.network.builders import random_geometric_network
from repro.network.compact import CompactNetwork
from repro.network.subgraph import Rectangle

SEEDS = [5, 19]


def _weights_for(network, seed: int):
    rng = random.Random(seed)
    return {
        node_id: round(rng.uniform(0.1, 5.0), 3)
        for node_id in network.node_ids()
        if rng.random() < 0.6
    }


@pytest.fixture(params=SEEDS)
def window_setup(request):
    seed = request.param
    network = random_geometric_network(num_nodes=100, extent=2000.0, seed=seed)
    frozen = CompactNetwork.from_network(network)
    window = frozen.window_view(Rectangle(200.0, 200.0, 1800.0, 1800.0))
    window_ids = set(window.node_ids())
    weights = {
        node_id: weight
        for node_id, weight in _weights_for(network, seed).items()
        if node_id in window_ids
    }
    return window, weights


class TestRenumbering:
    def test_local_positions_follow_window_order(self, window_setup):
        window, weights = window_setup
        dense = DenseInstance.from_graph(window, weights)
        assert dense.ids_list() == list(window.node_ids())
        assert dense.num_nodes == window.num_nodes
        assert dense.num_edges == window.num_edges
        position_of = dense.position_of()
        for position, node_id in enumerate(dense.ids_list()):
            assert position_of[node_id] == position

    def test_csr_arrays_are_shared_not_copied(self, window_setup):
        window, weights = window_setup
        dense = DenseInstance.from_graph(window, weights)
        indptr, indices, lengths = window.csr_index_arrays()
        assert dense.indptr is indptr
        assert dense.indices is indices
        assert dense.lengths is lengths
        assert dense.graph_view() is window

    def test_sigma_is_positioned_correctly(self, window_setup):
        window, weights = window_setup
        dense = DenseInstance.from_graph(window, weights)
        position_of = dense.position_of()
        for node_id, weight in weights.items():
            assert dense.sigma[position_of[node_id]] == weight
        untouched = set(range(dense.num_nodes)) - {position_of[n] for n in weights}
        assert all(dense.sigma[list(untouched)] == 0.0)

    def test_unknown_weight_key_is_rejected(self, window_setup):
        window, weights = window_setup
        weights = dict(weights)
        weights[10 ** 9] = 1.0
        with pytest.raises(QueryError):
            DenseInstance.from_graph(window, weights)

    def test_fallback_from_dict_backed_graph(self, window_setup):
        # The fallback constructor must mirror the *given* graph's iteration
        # order (node rows and per-row neighbours) — that is what makes the
        # dense loops tie-break identically to the dict loops over that graph.
        window, weights = window_setup
        thawed = window.to_network()
        dense = DenseInstance.from_graph(thawed, weights)
        assert dense.ids_list() == list(thawed.node_ids())
        position_of = dense.position_of()
        ids = dense.ids_list()
        for node_id in thawed.node_ids():
            pos = position_of[node_id]
            row = slice(int(dense.indptr[pos]), int(dense.indptr[pos + 1]))
            dense_row = [
                (ids[p], length)
                for p, length in zip(dense.indices[row].tolist(), dense.lengths[row].tolist())
            ]
            assert dense_row == list(thawed.neighbor_items(node_id))
        for node_id, weight in weights.items():
            assert dense.sigma[position_of[node_id]] == weight


class TestDictOrderReplay:
    def test_weights_dict_replays_items_and_order(self, window_setup):
        window, weights = window_setup
        dense = DenseInstance.from_graph(window, weights)
        assert list(dense.weights_dict().items()) == list(weights.items())

    def test_aggregates_match_reference_computations(self, window_setup):
        window, weights = window_setup
        dense = DenseInstance.from_graph(window, weights)
        assert dense.sigma_max == max(weights.values(), default=0.0)
        assert dense.total_weight == sum(weights.values())
        assert dense.tau_max == window.max_edge_length()
        relevant = dense.relevant_positions()
        ids = dense.ids_list()
        assert {ids[p] for p in relevant.tolist()} == {
            n for n, w in weights.items() if w > 0
        }

    def test_empty_weights(self, window_setup):
        window, _ = window_setup
        dense = DenseInstance.from_graph(window, {})
        assert dense.sigma_max == 0.0
        assert dense.total_weight == 0.0
        assert dense.relevant_positions().size == 0
        assert dense.weights_dict() == {}


class TestPickleRoundTrip:
    def test_arrays_and_dict_view_survive(self, window_setup):
        window, weights = window_setup
        dense = DenseInstance.from_graph(window, weights)
        rebuilt = pickle.loads(pickle.dumps(dense))
        assert np.array_equal(rebuilt.ids, dense.ids)
        assert np.array_equal(rebuilt.indptr, dense.indptr)
        assert np.array_equal(rebuilt.indices, dense.indices)
        assert np.array_equal(rebuilt.lengths, dense.lengths)
        assert np.array_equal(rebuilt.sigma, dense.sigma)
        assert np.array_equal(rebuilt.relevant_order, dense.relevant_order)
        assert rebuilt.sigma_max == dense.sigma_max
        assert rebuilt.total_weight == dense.total_weight
        assert list(rebuilt.weights_dict().items()) == list(weights.items())

    def test_rebuilt_substrate_solves_identically(self, window_setup):
        window, weights = window_setup
        query = LCMSRQuery.create(["kw"], delta=900.0)
        instance = build_instance(window, query, node_weights=weights)
        dense = instance.with_backend("dense").dense
        rebuilt = pickle.loads(pickle.dumps(dense))
        rebound = rebuilt.to_problem_instance(query)
        # The rebound instance has no dict yet; solvers and the lazy dict view
        # must both reproduce the original results bit for bit.
        for solver in (GreedySolver(), TGENSolver()):
            a = solver.solve(instance.with_backend("dict"))
            b = solver.solve(rebound)
            assert a.region.nodes == b.region.nodes
            assert a.region.edges == b.region.edges
            assert a.weight == b.weight
            assert a.length == b.length
        assert list(rebound.weights.items()) == list(instance.weights.items())
