"""Tests for the LCMSR query type."""

from __future__ import annotations

import pytest

from repro.core.query import LCMSRQuery
from repro.exceptions import QueryError
from repro.network.subgraph import Rectangle


class TestValidation:
    def test_create_normalises_keywords(self):
        query = LCMSRQuery.create(["Cafe", " cafe ", "BAR"], delta=5.0)
        assert query.keywords == ("cafe", "bar")
        assert query.keyword_count == 2

    def test_empty_keywords_rejected(self):
        with pytest.raises(QueryError):
            LCMSRQuery.create([], delta=5.0)
        with pytest.raises(QueryError):
            LCMSRQuery.create(["   "], delta=5.0)

    def test_negative_delta_rejected(self):
        with pytest.raises(QueryError):
            LCMSRQuery.create(["cafe"], delta=-1.0)

    def test_invalid_k_rejected(self):
        with pytest.raises(QueryError):
            LCMSRQuery.create(["cafe"], delta=1.0, k=0)

    def test_zero_delta_allowed(self):
        # A zero length constraint is legal: the answer is a single node.
        query = LCMSRQuery.create(["cafe"], delta=0.0)
        assert query.delta == 0.0


class TestDerivation:
    def test_with_delta(self):
        query = LCMSRQuery.create(["cafe"], delta=5.0)
        other = query.with_delta(9.0)
        assert other.delta == 9.0
        assert other.keywords == query.keywords
        assert query.delta == 5.0  # original unchanged

    def test_with_region(self):
        region = Rectangle(0, 0, 10, 10)
        query = LCMSRQuery.create(["cafe"], delta=5.0).with_region(region)
        assert query.region is region
        assert query.with_region(None).region is None

    def test_with_k(self):
        query = LCMSRQuery.create(["cafe"], delta=5.0).with_k(4)
        assert query.k == 4

    def test_frozen(self):
        query = LCMSRQuery.create(["cafe"], delta=5.0)
        with pytest.raises(AttributeError):
            query.delta = 1.0  # type: ignore[misc]
