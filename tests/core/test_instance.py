"""Tests for problem-instance construction (windowing + weight sources)."""

from __future__ import annotations

import pytest

from repro.core import LCMSRQuery, build_instance
from repro.exceptions import QueryError
from repro.network.builders import grid_network
from repro.network.subgraph import Rectangle
from repro.objects.mapping import map_objects_to_network
from repro.index.grid import GridIndex
from repro.textindex.relevance import RelevanceScorer

from tests.conftest import make_small_corpus


@pytest.fixture
def indexed_setup():
    network = grid_network(4, 4, spacing=100.0)
    corpus = make_small_corpus()
    mapping = map_objects_to_network(network, corpus)
    grid = GridIndex(corpus, resolution=4)
    scorer = RelevanceScorer(corpus, mapping)
    return network, corpus, mapping, grid, scorer


class TestWeightSources:
    def test_requires_exactly_one_source(self, indexed_setup):
        network, _, mapping, grid, scorer = indexed_setup
        query = LCMSRQuery.create(["cafe"], delta=300.0)
        with pytest.raises(QueryError):
            build_instance(network, query)
        with pytest.raises(QueryError):
            build_instance(network, query, grid_index=grid, mapping=mapping, scorer=scorer)
        with pytest.raises(QueryError):
            build_instance(network, query, grid_index=grid)  # mapping missing

    def test_grid_and_scorer_paths_agree(self, indexed_setup):
        network, _, mapping, grid, scorer = indexed_setup
        query = LCMSRQuery.create(["cafe", "coffee"], delta=300.0)
        via_grid = build_instance(network, query, grid_index=grid, mapping=mapping)
        via_scorer = build_instance(network, query, scorer=scorer)
        assert set(via_grid.weights) == set(via_scorer.weights)
        for node_id, weight in via_grid.weights.items():
            assert weight == pytest.approx(via_scorer.weights[node_id])

    def test_explicit_node_weights_filtered_to_window(self, indexed_setup):
        network, *_ = indexed_setup
        query = LCMSRQuery.create(["x"], delta=300.0, region=Rectangle(0, 0, 150, 150))
        instance = build_instance(
            network, query, node_weights={0: 1.0, 15: 2.0, 5: 0.0}
        )
        assert 0 in instance.weights
        assert 15 not in instance.weights  # outside the window
        assert 5 not in instance.weights  # zero weight dropped


class TestWindowing:
    def test_window_restricts_graph(self, indexed_setup):
        network, _, mapping, grid, _ = indexed_setup
        window = Rectangle(0, 0, 150, 150)
        query = LCMSRQuery.create(["cafe"], delta=300.0, region=window)
        instance = build_instance(network, query, grid_index=grid, mapping=mapping)
        assert instance.num_candidate_nodes == 4
        assert instance.num_candidate_edges == 4
        assert all(node_id in instance.graph for node_id in instance.weights)

    def test_no_window_uses_whole_network(self, indexed_setup):
        network, _, mapping, grid, _ = indexed_setup
        query = LCMSRQuery.create(["cafe"], delta=300.0)
        instance = build_instance(network, query, grid_index=grid, mapping=mapping)
        assert instance.num_candidate_nodes == network.num_nodes

    def test_no_window_shares_graph_read_only(self, indexed_setup):
        # A window-less instance must reuse the given graph object, not deep-copy
        # it: solvers treat instance graphs as read-only.
        network, _, mapping, grid, _ = indexed_setup
        query = LCMSRQuery.create(["cafe"], delta=300.0)
        instance = build_instance(network, query, grid_index=grid, mapping=mapping)
        assert instance.graph is network

    def test_window_on_compact_network_yields_compact_view(self, indexed_setup):
        from repro.network.compact import CompactNetwork

        network, _, mapping, grid, _ = indexed_setup
        snapshot = CompactNetwork.from_network(network)
        window = Rectangle(0, 0, 150, 150)
        query = LCMSRQuery.create(["cafe"], delta=300.0, region=window)
        dict_instance = build_instance(network, query, grid_index=grid, mapping=mapping)
        csr_instance = build_instance(snapshot, query, grid_index=grid, mapping=mapping)
        assert isinstance(csr_instance.graph, CompactNetwork)
        assert csr_instance.weights == dict_instance.weights
        assert set(csr_instance.graph.node_ids()) == set(dict_instance.graph.node_ids())


class TestDerivedFacts:
    def test_sigma_and_totals(self, indexed_setup):
        network, _, mapping, grid, _ = indexed_setup
        query = LCMSRQuery.create(["cafe"], delta=300.0)
        instance = build_instance(network, query, grid_index=grid, mapping=mapping)
        assert instance.has_relevant_nodes
        assert instance.sigma_max() == max(instance.weights.values())
        assert instance.total_weight() == pytest.approx(sum(instance.weights.values()))
        assert instance.relevant_nodes() == set(instance.weights)
        assert instance.weight_of(-99) == 0.0

    def test_restricted_to(self, indexed_setup):
        network, _, mapping, grid, _ = indexed_setup
        query = LCMSRQuery.create(["cafe"], delta=300.0)
        instance = build_instance(network, query, grid_index=grid, mapping=mapping)
        some_node = next(iter(instance.weights))
        restricted = instance.restricted_to([some_node])
        assert restricted.num_candidate_nodes == 1
        assert set(restricted.weights) == {some_node}
