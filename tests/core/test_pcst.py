"""Tests for the Goemans-Williamson PCST primal-dual and strong pruning."""

from __future__ import annotations

import pytest

from repro.core.pcst import PCSTResult, goemans_williamson_pcst, strong_prune
from repro.exceptions import SolverError


class TestStrongPrune:
    def test_empty_tree(self):
        assert strong_prune(set(), [], {}) == (set(), [])

    def test_keeps_profitable_branch(self):
        # 1 -(1)- 2 -(1)- 3 ; prizes 5, 0, 5 -> everything is worth keeping.
        nodes = {1, 2, 3}
        edges = [(1, 2, 1.0), (2, 3, 1.0)]
        prizes = {1: 5.0, 3: 5.0}
        kept_nodes, kept_edges = strong_prune(nodes, edges, prizes)
        assert kept_nodes == {1, 2, 3}
        assert len(kept_edges) == 2

    def test_prunes_unprofitable_branch(self):
        # A worthless leaf hanging off an expensive edge must be cut.
        nodes = {1, 2, 3}
        edges = [(1, 2, 1.0), (2, 3, 10.0)]
        prizes = {1: 5.0, 2: 5.0, 3: 0.5}
        kept_nodes, _ = strong_prune(nodes, edges, prizes)
        assert kept_nodes == {1, 2}

    def test_explicit_root_always_kept(self):
        nodes = {1, 2}
        edges = [(1, 2, 100.0)]
        prizes = {1: 0.0, 2: 50.0}
        kept_nodes, _ = strong_prune(nodes, edges, prizes, root=1)
        assert 1 in kept_nodes
        assert 2 not in kept_nodes  # reaching the prize costs more than it is worth

    def test_result_is_connected_tree(self):
        nodes = set(range(7))
        # A star with mixed-value leaves.
        edges = [(0, i, float(i)) for i in range(1, 7)]
        prizes = {i: (10.0 if i % 2 == 0 else 0.1) for i in range(7)}
        kept_nodes, kept_edges = strong_prune(nodes, edges, prizes)
        assert 0 in kept_nodes
        assert len(kept_edges) == len(kept_nodes) - 1


class TestGoemansWilliamson:
    def test_empty_graph(self):
        result = goemans_williamson_pcst([], [], {})
        assert result.trees == []
        assert result.total_prize == 0.0

    def test_negative_inputs_rejected(self):
        with pytest.raises(SolverError):
            goemans_williamson_pcst([1, 2], [(1, 2, -1.0)], {})
        with pytest.raises(SolverError):
            goemans_williamson_pcst([1], [], {1: -2.0})

    def test_isolated_prizes_become_single_node_trees(self):
        result = goemans_williamson_pcst([1, 2, 3], [], {1: 1.0, 3: 2.0})
        covered = {node for tree in result.trees for node in tree[0]}
        assert covered == {1, 3}
        assert all(edges == [] for _, edges in result.trees)

    def test_cheap_edge_between_high_prizes_is_taken(self):
        # Two valuable nodes connected cheaply must end up in one tree.
        result = goemans_williamson_pcst(
            [1, 2], [(1, 2, 1.0)], {1: 10.0, 2: 10.0}
        )
        best_nodes, best_edges = result.best_tree({1: 10.0, 2: 10.0})
        assert best_nodes == {1, 2}
        assert len(best_edges) == 1

    def test_expensive_edge_between_low_prizes_is_not_taken(self):
        result = goemans_williamson_pcst(
            [1, 2], [(1, 2, 100.0)], {1: 1.0, 2: 1.0}
        )
        for nodes, edges in result.trees:
            assert edges == []

    def test_chain_collects_prizes_along_the_way(self):
        nodes = [1, 2, 3, 4]
        edges = [(1, 2, 1.0), (2, 3, 1.0), (3, 4, 1.0)]
        prizes = {1: 5.0, 2: 0.5, 3: 0.5, 4: 5.0}
        result = goemans_williamson_pcst(nodes, edges, prizes)
        best_nodes, _ = result.best_tree(prizes)
        assert best_nodes == {1, 2, 3, 4}

    def test_trees_are_valid_trees(self):
        nodes = list(range(9))
        # 3x3 grid with unit costs and one strong prize cluster in a corner.
        edges = []
        for r in range(3):
            for c in range(3):
                nid = r * 3 + c
                if c + 1 < 3:
                    edges.append((nid, nid + 1, 1.0))
                if r + 1 < 3:
                    edges.append((nid, nid + 3, 1.0))
        prizes = {0: 4.0, 1: 4.0, 3: 4.0, 8: 0.2}
        result = goemans_williamson_pcst(nodes, edges, prizes)
        for tree_nodes, tree_edges in result.trees:
            assert len(tree_edges) == len(tree_nodes) - 1 or (
                len(tree_nodes) == 1 and not tree_edges
            )
            for u, v, _ in tree_edges:
                assert u in tree_nodes and v in tree_nodes

    def test_larger_prizes_extend_coverage(self):
        """Scaling all prizes up monotonically grows what GW+pruning keeps."""
        nodes = list(range(6))
        edges = [(i, i + 1, 2.0) for i in range(5)]
        base = {i: 1.0 for i in range(6)}
        small = goemans_williamson_pcst(nodes, edges, base)
        big = goemans_williamson_pcst(nodes, edges, {i: 10.0 for i in range(6)})
        covered_small = max((len(t[0]) for t in small.trees), default=0)
        covered_big = max((len(t[0]) for t in big.trees), default=0)
        assert covered_big >= covered_small
        assert covered_big == 6
