"""Tests for the TGEN tuple-generation algorithm."""

from __future__ import annotations

import pytest

from repro.core import LCMSRQuery, build_instance
from repro.core.tgen import TGENSolver
from repro.exceptions import SolverError
from repro.network.builders import grid_network, paper_example_network, path_network

from tests.conftest import (
    PAPER_EXAMPLE_DELTA,
    PAPER_EXAMPLE_OPTIMUM_NODES,
    PAPER_EXAMPLE_OPTIMUM_WEIGHT,
    PAPER_EXAMPLE_WEIGHTS,
)


class TestParameterValidation:
    def test_alpha_must_be_positive(self):
        with pytest.raises(SolverError):
            TGENSolver(alpha=0.0)

    def test_edge_order_validated(self):
        with pytest.raises(SolverError):
            TGENSolver(edge_order="random")

    def test_auto_alpha_scales_with_window(self, paper_instance):
        solver = TGENSolver()
        assert solver.alpha is None
        effective = solver._effective_alpha(paper_instance)
        assert effective == pytest.approx(6 / TGENSolver.AUTO_BUCKETS)


class TestEndToEnd:
    def test_paper_example_optimum_recovered(self, paper_instance):
        result = TGENSolver(alpha=0.15).solve(paper_instance)
        assert result.region.nodes == PAPER_EXAMPLE_OPTIMUM_NODES
        assert result.weight == pytest.approx(PAPER_EXAMPLE_OPTIMUM_WEIGHT)
        assert result.scaled_weight == 110  # Example 3's region tuple

    def test_figure3_drawback_scenario(self):
        """The Figure 3 query: keywords {t1, t2}, Δ = 3.5 -> region {v2, v3}.

        The clustering strawman splits v2 and v3 into different clusters; TGEN must
        return exactly that cross-cluster region.
        """
        graph = paper_example_network()
        # Only v2 (t2, t3) and v3 (t1, t4) are relevant to {t1, t2}.
        weights = {2: 0.5, 3: 0.5}
        query = LCMSRQuery.create(["t1", "t2"], delta=5.0)
        instance = build_instance(graph, query, node_weights=weights)
        result = TGENSolver(alpha=0.15).solve(instance)
        assert result.region.nodes == frozenset({2, 3})

    def test_result_always_feasible_and_connected(self, paper_graph):
        for delta in (0.0, 2.0, 3.5, 5.0, 6.0, 12.0):
            query = LCMSRQuery.create(["t"], delta=delta)
            instance = build_instance(paper_graph, query, node_weights=PAPER_EXAMPLE_WEIGHTS)
            result = TGENSolver(alpha=0.15).solve(instance)
            assert result.region.satisfies(delta)
            result.region.validate(paper_graph)

    def test_no_relevant_nodes(self, paper_graph):
        query = LCMSRQuery.create(["t"], delta=5.0)
        instance = build_instance(paper_graph, query, node_weights={})
        assert TGENSolver().solve(instance).is_empty

    def test_monotone_in_delta(self, paper_graph):
        """A larger budget can never produce a lighter region."""
        weights = PAPER_EXAMPLE_WEIGHTS
        previous = -1.0
        for delta in (0.0, 1.6, 3.0, 4.4, 5.9, 8.0, 14.0):
            query = LCMSRQuery.create(["t"], delta=delta)
            instance = build_instance(paper_graph, query, node_weights=weights)
            weight = TGENSolver(alpha=0.05).solve(instance).weight
            assert weight >= previous - 1e-9
            previous = weight

    def test_disconnected_window_handled(self):
        """TGEN restarts its BFS in every component (Algorithm 2's outer loop)."""
        network = path_network(3, edge_length=1.0)
        network.add_node(10, 100.0, 0.0)
        network.add_node(11, 101.0, 0.0)
        network.add_edge(10, 11, 1.0)
        weights = {0: 0.2, 1: 0.2, 10: 0.9, 11: 0.9}
        query = LCMSRQuery.create(["t"], delta=1.5)
        instance = build_instance(network, query, node_weights=weights)
        result = TGENSolver(alpha=0.1).solve(instance)
        assert result.region.nodes == frozenset({10, 11})

    def test_edge_longer_than_delta_skipped(self):
        network = path_network(2, edge_length=10.0)
        weights = {0: 0.5, 1: 0.5}
        query = LCMSRQuery.create(["t"], delta=5.0)
        instance = build_instance(network, query, node_weights=weights)
        result = TGENSolver(alpha=0.1).solve(instance)
        assert result.region.num_nodes == 1

    def test_length_edge_order_gives_similar_quality(self, paper_instance):
        bfs = TGENSolver(alpha=0.15, edge_order="bfs").solve(paper_instance)
        by_length = TGENSolver(alpha=0.15, edge_order="length").solve(paper_instance)
        assert by_length.weight == pytest.approx(bfs.weight)

    def test_tuple_cap_trades_accuracy(self):
        """A tiny per-node tuple cap cannot beat the uncapped run (ablation invariant)."""
        network = grid_network(4, 4, spacing=1.0)
        weights = {i: 0.1 + 0.05 * (i % 5) for i in range(16)}
        query = LCMSRQuery.create(["t"], delta=6.0)
        instance = build_instance(network, query, node_weights=weights)
        full = TGENSolver(alpha=0.2).solve(instance)
        capped = TGENSolver(alpha=0.2, max_tuples_per_node=2).solve(instance)
        assert capped.weight <= full.weight + 1e-9

    def test_coarser_alpha_reduces_tuple_count(self, paper_graph):
        query = LCMSRQuery.create(["t"], delta=6.0)
        instance = build_instance(paper_graph, query, node_weights=PAPER_EXAMPLE_WEIGHTS)
        fine = TGENSolver(alpha=0.05).solve(instance)
        coarse = TGENSolver(alpha=3.0).solve(instance)
        assert coarse.stats["tuples_generated"] <= fine.stats["tuples_generated"]
