"""Tests for the quota (node-weighted k-MST) solver used by APP's binary search."""

from __future__ import annotations

import pytest

from repro.core.kmst import QuotaTreeSolver
from repro.network.builders import grid_network, path_network, star_network


def solver_on_path(weights=None, scaled=None):
    network = path_network(6, edge_length=2.0)
    weights = weights or {0: 0.5, 2: 0.5, 5: 0.9}
    scaled = scaled or {k: int(v * 10) for k, v in weights.items()}
    return QuotaTreeSolver(network, weights, scaled), network


class TestBasics:
    def test_no_terminals_returns_none(self):
        network = path_network(3)
        solver = QuotaTreeSolver(network, {}, {})
        assert solver.solve(5) is None
        assert solver.terminals == []

    def test_zero_quota_returns_best_single_terminal(self):
        solver, _ = solver_on_path()
        tree = solver.solve(0)
        assert tree is not None
        assert tree.nodes == frozenset({5})
        assert tree.length == 0.0

    def test_single_node_quota(self):
        solver, _ = solver_on_path()
        tree = solver.solve(9)  # the heaviest node alone satisfies it
        assert tree is not None
        assert tree.scaled_weight >= 9
        assert tree.length == 0.0

    def test_quota_above_total_returns_none(self):
        solver, _ = solver_on_path()
        assert solver.total_scaled_weight() == 19
        assert solver.solve(100) is None

    def test_quota_requiring_all_terminals(self):
        solver, network = solver_on_path()
        tree = solver.solve(19)
        assert tree is not None
        assert tree.scaled_weight >= 19
        # Connecting nodes 0, 2 and 5 on the path needs the whole 0..5 stretch (10.0).
        assert tree.length == pytest.approx(10.0)
        # Intermediate path nodes must be part of the tree (it lives in the network).
        assert {0, 1, 2, 3, 4, 5} == set(tree.nodes)

    def test_tree_is_structurally_valid(self):
        solver, network = solver_on_path()
        tree = solver.solve(14)
        assert tree is not None
        assert len(tree.edges) == len(tree.nodes) - 1
        for u, v in tree.edges:
            assert network.has_edge(u, v)
        assert tree.length == pytest.approx(
            sum(network.edge_length(u, v) for u, v in tree.edges)
        )


class TestQuality:
    def test_nearby_cluster_preferred_over_far_nodes(self):
        # Two weighted clusters: a compact one (quota reachable cheaply) and a far one.
        network = grid_network(5, 5, spacing=1.0)
        weights = {0: 1.0, 1: 1.0, 5: 1.0, 24: 1.0}
        scaled = {k: 10 for k in weights}
        solver = QuotaTreeSolver(network, weights, scaled)
        tree = solver.solve(30)
        assert tree is not None
        # The three co-located corner nodes {0, 1, 5} satisfy the quota with length 2.
        assert tree.scaled_weight >= 30
        assert tree.length == pytest.approx(2.0)
        assert 24 not in tree.nodes

    def test_monotone_quota_length(self):
        solver, _ = solver_on_path()
        lengths = []
        for quota in (5, 9, 14, 19):
            tree = solver.solve(quota)
            assert tree is not None
            assert tree.scaled_weight >= quota
            lengths.append(tree.length)
        assert lengths == sorted(lengths)

    def test_star_graph_picks_cheapest_leaves(self):
        network = star_network(5, edge_length=1.0)
        # Leaves 1..5 all weighted equally; centre unweighted.
        weights = {leaf: 1.0 for leaf in range(1, 6)}
        scaled = {leaf: 10 for leaf in range(1, 6)}
        solver = QuotaTreeSolver(network, weights, scaled)
        tree = solver.solve(20)
        assert tree is not None
        assert tree.scaled_weight >= 20
        # Two leaves plus the centre: length 2 (any extra leaf would add 1.0).
        assert tree.length <= 3.0 + 1e-9

    def test_candidate_trees_cached(self):
        solver, _ = solver_on_path()
        solver.solve(5)
        runs_after_first = solver.num_gw_runs
        solver.solve(14)
        assert solver.num_gw_runs == runs_after_first  # ladder reused, no extra GW runs
