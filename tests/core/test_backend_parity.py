"""Every solver must produce identical results on dict and CSR graph backends.

The CSR snapshot replicates the dict backend's iteration order, so solvers —
including the ones that tie-break by discovery order — are expected to return
*identical* regions (node sets, edge sets, lengths, weights), not merely regions
of equal score.
"""

from __future__ import annotations

import random

import pytest

from repro.core.app import APPSolver
from repro.core.exact import ExactSolver
from repro.core.greedy import GreedySolver
from repro.core.instance import build_instance
from repro.core.query import LCMSRQuery
from repro.core.tgen import TGENSolver
from repro.network.builders import grid_network, random_geometric_network
from repro.network.compact import CompactNetwork
from repro.network.subgraph import Rectangle


def _weights_for(network, seed: int, fraction: float = 0.4):
    rng = random.Random(seed)
    return {
        node_id: rng.uniform(0.5, 5.0)
        for node_id in network.node_ids()
        if rng.random() < fraction
    }


def _instances(network, weights, delta, region=None):
    """The same problem instance over the dict backend and the CSR snapshot."""
    query = LCMSRQuery.create(["kw"], delta=delta, region=region)
    dict_instance = build_instance(network, query, node_weights=weights)
    csr_instance = build_instance(
        CompactNetwork.from_network(network), query, node_weights=weights
    )
    return dict_instance, csr_instance


def _assert_same_result(result_a, result_b):
    assert result_a.region.nodes == result_b.region.nodes
    assert result_a.region.edges == result_b.region.edges
    assert result_a.length == pytest.approx(result_b.length, abs=1e-12)
    assert result_a.weight == pytest.approx(result_b.weight, abs=1e-12)


class TestSolverBackendParity:
    @pytest.mark.parametrize("seed", [3, 21])
    def test_greedy_tgen_app_on_random_networks(self, seed):
        network = random_geometric_network(num_nodes=90, extent=2000.0, seed=seed)
        weights = _weights_for(network, seed)
        dict_instance, csr_instance = _instances(network, weights, delta=900.0)
        for solver in (GreedySolver(mu=0.3), TGENSolver(), APPSolver()):
            _assert_same_result(solver.solve(dict_instance), solver.solve(csr_instance))

    def test_solvers_on_uniform_grid(self):
        # Uniform edge lengths maximise ties; order preservation must keep the
        # backends in lockstep anyway.
        network = grid_network(6, 6, spacing=100.0)
        weights = _weights_for(network, seed=5, fraction=0.5)
        dict_instance, csr_instance = _instances(network, weights, delta=450.0)
        for solver in (GreedySolver(), TGENSolver(), APPSolver()):
            _assert_same_result(solver.solve(dict_instance), solver.solve(csr_instance))

    def test_exact_solver_on_small_window(self):
        network = random_geometric_network(num_nodes=60, extent=1000.0, seed=8)
        weights = _weights_for(network, seed=8, fraction=0.6)
        region = Rectangle(0.0, 0.0, 420.0, 420.0)
        dict_instance, csr_instance = _instances(
            network, weights, delta=600.0, region=region
        )
        assert dict_instance.num_candidate_nodes == csr_instance.num_candidate_nodes
        if dict_instance.num_candidate_nodes == 0:
            pytest.skip("window captured no nodes for this seed")
        solver = ExactSolver(max_nodes=dict_instance.num_candidate_nodes)
        _assert_same_result(solver.solve(dict_instance), solver.solve(csr_instance))

    @pytest.mark.parametrize("seed", [13, 14])
    def test_topk_parity_on_windowed_instances(self, seed):
        network = random_geometric_network(num_nodes=120, extent=2500.0, seed=seed)
        weights = _weights_for(network, seed)
        region = Rectangle(200.0, 200.0, 2000.0, 2000.0)
        dict_instance, csr_instance = _instances(
            network, weights, delta=800.0, region=region
        )
        for solver in (GreedySolver(), TGENSolver()):
            topk_dict = solver.solve_topk(dict_instance, k=3)
            topk_csr = solver.solve_topk(csr_instance, k=3)
            assert len(topk_dict.results) == len(topk_csr.results)
            for result_d, result_c in zip(topk_dict.results, topk_csr.results):
                _assert_same_result(result_d, result_c)
