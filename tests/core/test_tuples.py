"""Tests for region tuples and tuple arrays (Definitions 4-6, Lemma 6 dominance)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.tuples import RegionTuple, TupleArray


def tuple_strategy():
    return st.builds(
        RegionTuple,
        length=st.floats(0, 100, allow_nan=False),
        weight=st.floats(0, 10, allow_nan=False),
        scaled_weight=st.integers(0, 50),
        nodes=st.frozensets(st.integers(0, 30), min_size=1, max_size=6),
        edges=st.just(frozenset()),
    )


class TestRegionTuple:
    def test_singleton(self):
        t = RegionTuple.singleton(3, 0.7, 12)
        assert t.length == 0.0
        assert t.nodes == frozenset({3})
        assert t.edges == frozenset()
        assert t.scaled_weight == 12

    def test_combine_disjoint(self):
        a = RegionTuple.singleton(1, 0.5, 5)
        b = RegionTuple.singleton(2, 0.3, 3)
        combined = a.combine(b, 1, 2, 4.0)
        assert combined.length == pytest.approx(4.0)
        assert combined.weight == pytest.approx(0.8)
        assert combined.scaled_weight == 8
        assert combined.nodes == frozenset({1, 2})
        assert combined.edges == frozenset({(1, 2)})

    def test_combine_accumulates_lengths(self):
        a = RegionTuple(2.0, 0.5, 5, frozenset({1, 2}), frozenset({(1, 2)}))
        b = RegionTuple.singleton(3, 0.1, 1)
        combined = a.combine(b, 2, 3, 1.5)
        assert combined.length == pytest.approx(3.5)
        assert combined.edges == frozenset({(1, 2), (2, 3)})

    def test_extend(self):
        a = RegionTuple.singleton(1, 0.5, 5)
        extended = a.extend(4, 0.2, 2, attach_to=1, edge_length=3.0)
        assert extended.nodes == frozenset({1, 4})
        assert extended.edges == frozenset({(1, 4)})
        assert extended.scaled_weight == 7

    def test_shares_nodes_with(self):
        a = RegionTuple.singleton(1, 0.5, 5)
        b = RegionTuple.singleton(1, 0.5, 5)
        c = RegionTuple.singleton(2, 0.5, 5)
        assert a.shares_nodes_with(b)
        assert not a.shares_nodes_with(c)

    def test_to_region(self):
        a = RegionTuple(1.5, 0.7, 7, frozenset({1, 2}), frozenset({(1, 2)}))
        region = a.to_region()
        assert region.weight == pytest.approx(0.7)
        assert region.length == pytest.approx(1.5)

    def test_better_than_ordering(self):
        heavy = RegionTuple.singleton(1, 1.0, 10)
        light = RegionTuple.singleton(2, 0.5, 5)
        assert heavy.better_than(light)
        assert not light.better_than(heavy)
        assert heavy.better_than(None)
        # Equal scaled weight: larger original weight wins; then shorter length.
        long_one = RegionTuple(5.0, 1.0, 10, frozenset({3}), frozenset())
        short_one = RegionTuple(1.0, 1.0, 10, frozenset({4}), frozenset())
        assert short_one.better_than(long_one)


class TestTupleArray:
    def test_update_keeps_shortest_per_key(self):
        array = TupleArray()
        long_tuple = RegionTuple(5.0, 1.0, 10, frozenset({1}), frozenset())
        short_tuple = RegionTuple(2.0, 1.0, 10, frozenset({2}), frozenset())
        assert array.update(long_tuple)
        assert array.update(short_tuple)
        assert not array.update(long_tuple)
        assert array.get(10) is short_tuple
        assert len(array) == 1
        assert 10 in array

    def test_best_prefers_largest_scaled_weight(self):
        array = TupleArray()
        array.update(RegionTuple(1.0, 0.4, 4, frozenset({1}), frozenset()))
        array.update(RegionTuple(9.0, 0.9, 9, frozenset({2}), frozenset()))
        assert array.best().scaled_weight == 9

    def test_best_empty(self):
        assert TupleArray().best() is None

    def test_prune_longer_than(self):
        array = TupleArray()
        array.update(RegionTuple(1.0, 0.4, 4, frozenset({1}), frozenset()))
        array.update(RegionTuple(9.0, 0.9, 9, frozenset({2}), frozenset()))
        array.prune_longer_than(5.0)
        assert array.get(9) is None
        assert array.get(4) is not None

    @settings(max_examples=50, deadline=None)
    @given(tuples=st.lists(tuple_strategy(), min_size=0, max_size=40))
    def test_per_key_minimality_invariant(self, tuples):
        array = TupleArray()
        for candidate in tuples:
            array.update(candidate)
        # For every scaled weight, the stored tuple must be the shortest ever offered.
        best_by_key = {}
        for candidate in tuples:
            current = best_by_key.get(candidate.scaled_weight)
            if current is None or candidate.length < current:
                best_by_key[candidate.scaled_weight] = candidate.length
        for key, expected_length in best_by_key.items():
            stored = array.get(key)
            assert stored is not None
            assert stored.length == pytest.approx(expected_length)

    @settings(max_examples=50, deadline=None)
    @given(tuples=st.lists(tuple_strategy(), min_size=1, max_size=40))
    def test_best_matches_preference_order(self, tuples):
        array = TupleArray()
        for candidate in tuples:
            array.update(candidate)
        best = array.best()
        for stored in array.tuples():
            assert not stored.better_than(best) or stored is best
