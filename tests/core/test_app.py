"""Tests for the APP algorithm: binary search, findOptTree DP and end-to-end solving."""

from __future__ import annotations

import pytest

from repro.core import LCMSRQuery, build_instance
from repro.core.app import APPSolver, find_opt_tree, rank_tuples_from_arrays
from repro.core.kmst import CandidateTree
from repro.core.scaling import ScalingContext
from repro.exceptions import SolverError
from repro.network.builders import paper_example_network, path_network, star_network

from tests.conftest import (
    PAPER_EXAMPLE_DELTA,
    PAPER_EXAMPLE_OPTIMUM_LENGTH,
    PAPER_EXAMPLE_OPTIMUM_NODES,
    PAPER_EXAMPLE_OPTIMUM_WEIGHT,
    PAPER_EXAMPLE_WEIGHTS,
)


def make_candidate_tree(graph, nodes, edges, weights, scaled):
    length = sum(graph.edge_length(u, v) for u, v in edges)
    return CandidateTree(
        nodes=frozenset(nodes),
        edges=frozenset(edges),
        length=length,
        weight=sum(weights.get(v, 0.0) for v in nodes),
        scaled_weight=sum(scaled.get(v, 0) for v in nodes),
    )


class TestParameterValidation:
    def test_alpha_and_beta_must_be_positive(self):
        with pytest.raises(SolverError):
            APPSolver(alpha=0.0)
        with pytest.raises(SolverError):
            APPSolver(beta=0.0)


class TestFindOptTree:
    def test_empty_tree(self):
        graph = path_network(2)
        tree = CandidateTree(frozenset(), frozenset(), 0.0, 0.0, 0)
        best, arrays = find_opt_tree(tree, graph, {}, {}, delta=5.0)
        assert best is None
        assert arrays == {}

    def test_single_node_tree(self):
        graph = path_network(2)
        tree = make_candidate_tree(graph, [0], [], {0: 0.4}, {0: 4})
        best, _ = find_opt_tree(tree, graph, {0: 0.4}, {0: 4}, delta=5.0)
        assert best is not None
        assert best.nodes == frozenset({0})
        assert best.scaled_weight == 4

    def test_knapsack_star_case(self):
        """Theorem 3's construction: a star where the DP must pick the best subset."""
        graph = star_network(4, edge_length=1.0)
        # Leaf weights 4,3,2,1 with uniform edge costs 1; Δ = 2 -> keep the two best.
        weights = {1: 0.4, 2: 0.3, 3: 0.2, 4: 0.1, 0: 0.0}
        scaled = {1: 4, 2: 3, 3: 2, 4: 1, 0: 0}
        tree = make_candidate_tree(
            graph, [0, 1, 2, 3, 4], [(0, 1), (0, 2), (0, 3), (0, 4)], weights, scaled
        )
        best, _ = find_opt_tree(tree, graph, weights, scaled, delta=2.0)
        assert best is not None
        assert best.nodes == frozenset({0, 1, 2})
        assert best.scaled_weight == 7
        assert best.length == pytest.approx(2.0)

    def test_respects_length_constraint(self):
        graph = path_network(5, edge_length=3.0)
        weights = {i: 0.1 * (i + 1) for i in range(5)}
        scaled = {i: i + 1 for i in range(5)}
        tree = make_candidate_tree(
            graph, list(range(5)), [(i, i + 1) for i in range(4)], weights, scaled
        )
        best, _ = find_opt_tree(tree, graph, weights, scaled, delta=6.0)
        assert best is not None
        assert best.length <= 6.0 + 1e-9
        # Best feasible stretch of length <= 6 is nodes {2,3,4} (scaled 12).
        assert best.nodes == frozenset({2, 3, 4})

    def test_paper_example_dp_on_optimal_tree(self):
        graph = paper_example_network()
        weights = PAPER_EXAMPLE_WEIGHTS
        scaling = ScalingContext.build(weights, 6, alpha=0.15)
        scaled = scaling.scale_weights(weights)
        # Candidate tree = the whole optimal region's tree plus the detour to v1.
        tree = make_candidate_tree(
            graph, [1, 2, 4, 5, 6], [(1, 2), (2, 6), (6, 5), (5, 4)], weights, scaled
        )
        best, arrays = find_opt_tree(tree, graph, weights, scaled, PAPER_EXAMPLE_DELTA)
        assert best is not None
        assert best.nodes == PAPER_EXAMPLE_OPTIMUM_NODES
        assert best.weight == pytest.approx(PAPER_EXAMPLE_OPTIMUM_WEIGHT)
        assert len(arrays) == 5

    def test_rank_tuples_from_arrays_distinct(self):
        graph = path_network(3, edge_length=1.0)
        weights = {0: 0.3, 1: 0.2, 2: 0.1}
        scaled = {0: 3, 1: 2, 2: 1}
        tree = make_candidate_tree(graph, [0, 1, 2], [(0, 1), (1, 2)], weights, scaled)
        _, arrays = find_opt_tree(tree, graph, weights, scaled, delta=10.0)
        ranked = rank_tuples_from_arrays(arrays, k=3)
        assert len(ranked) == 3
        node_sets = [t.nodes for t in ranked]
        assert len(set(node_sets)) == 3
        assert ranked[0].scaled_weight >= ranked[1].scaled_weight >= ranked[2].scaled_weight


class TestBinarySearch:
    def test_trace_has_table1_shape(self, paper_instance):
        solver = APPSolver(alpha=0.15, beta=0.5)
        trace = solver.trace_binary_search(paper_instance)
        assert len(trace) >= 1
        rows = trace.rows()
        for row in rows:
            assert row["L"] <= row["X"] <= row["U"]
        # The final step must have probed the boosted quota (the break condition).
        assert rows[-1]["(1+beta)X"] is not None

    def test_trace_on_empty_instance(self, paper_graph):
        query = LCMSRQuery.create(["t"], delta=5.0)
        instance = build_instance(paper_graph, query, node_weights={})
        assert len(APPSolver().trace_binary_search(instance)) == 0


class TestEndToEnd:
    def test_paper_example_optimum_recovered(self, paper_instance):
        result = APPSolver(alpha=0.15, beta=0.1).solve(paper_instance)
        assert result.region.nodes == PAPER_EXAMPLE_OPTIMUM_NODES
        assert result.weight == pytest.approx(PAPER_EXAMPLE_OPTIMUM_WEIGHT)
        assert result.length == pytest.approx(PAPER_EXAMPLE_OPTIMUM_LENGTH)
        assert result.region.satisfies(PAPER_EXAMPLE_DELTA)
        assert result.stats["binary_search_iterations"] >= 1

    def test_result_always_feasible(self, paper_graph):
        weights = PAPER_EXAMPLE_WEIGHTS
        for delta in (0.0, 1.6, 3.0, 4.5, 6.0, 20.0):
            query = LCMSRQuery.create(["t"], delta=delta)
            instance = build_instance(paper_graph, query, node_weights=weights)
            result = APPSolver(alpha=0.15, beta=0.1).solve(instance)
            assert result.region.satisfies(delta)
            assert not result.is_empty
            result.region.validate(paper_graph)

    def test_zero_delta_returns_heaviest_node(self, paper_graph):
        query = LCMSRQuery.create(["t"], delta=0.0)
        instance = build_instance(paper_graph, query, node_weights=PAPER_EXAMPLE_WEIGHTS)
        result = APPSolver(alpha=0.15).solve(instance)
        assert result.region.num_nodes == 1
        assert result.weight == pytest.approx(0.4)

    def test_no_relevant_nodes_returns_empty(self, paper_graph):
        query = LCMSRQuery.create(["t"], delta=5.0)
        instance = build_instance(paper_graph, query, node_weights={})
        result = APPSolver().solve(instance)
        assert result.is_empty

    def test_unlimited_delta_collects_everything(self, paper_graph):
        query = LCMSRQuery.create(["t"], delta=1e6)
        instance = build_instance(paper_graph, query, node_weights=PAPER_EXAMPLE_WEIGHTS)
        result = APPSolver(alpha=0.15).solve(instance)
        assert result.weight == pytest.approx(sum(PAPER_EXAMPLE_WEIGHTS.values()))
