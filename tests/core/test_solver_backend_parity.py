"""Seeded cross-backend parity: dense-substrate solvers vs the dict reference.

The dense solver substrate (:mod:`repro.core.dense`) is required to be a pure
representation change: for every solver, every scoring mode, and windowed as
well as window-less queries, the results must be **byte-identical** to the dict
reference backend — same regions, same tie-breaks, bit-equal floats. This is
the solver-layer counterpart of PR 2's network-backend and PR 4's
weight-backend parity suites.

The suite runs the full indexed path (dataset → ``IndexBundle`` → engine →
``build_instance`` with the columnar pipeline, which attaches the dense
substrate) and compares ``solve`` / ``solve_topk`` under
``with_backend("dict")`` vs ``with_backend("dense")``. Exact runs on a tiny
window and additionally exercises the dense-first route (an instance created
from the substrate alone, with the dict view materialised lazily).
"""

from __future__ import annotations

import pytest

from repro.core.app import APPSolver
from repro.core.exact import ExactSolver
from repro.core.greedy import GreedySolver
from repro.core.tgen import TGENSolver
from repro.datasets.ny import build_ny_like
from repro.datasets.queries import generate_workload
from repro.engine import LCMSREngine
from repro.network.subgraph import Rectangle
from repro.service.bundle import IndexBundle
from repro.textindex.relevance import ScoringMode

SEED = 23
MODES = [
    ScoringMode.TEXT_RELEVANCE,
    ScoringMode.RATING_IF_MATCH,
    ScoringMode.LANGUAGE_MODEL,
]


@pytest.fixture(scope="module")
def dataset():
    return build_ny_like(
        rows=14, cols=14, block_size=120.0, num_objects=420, num_clusters=6, seed=SEED
    )


@pytest.fixture(scope="module", params=MODES, ids=lambda mode: mode.value)
def engine(request, dataset):
    bundle = IndexBundle.build(
        dataset.network, dataset.corpus, grid_resolution=16, scoring_mode=request.param
    )
    return LCMSREngine.from_bundle(bundle)


@pytest.fixture(scope="module")
def workload(dataset):
    windowed = generate_workload(
        dataset, num_queries=3, num_keywords=3, delta=700.0, area_km2=0.5, seed=SEED
    )
    return windowed + [query.with_region(None) for query in windowed]


def _assert_identical(result_a, result_b, context):
    assert result_a.region.nodes == result_b.region.nodes, context
    assert result_a.region.edges == result_b.region.edges, context
    assert result_a.weight == result_b.weight, context  # bit-equal, no approx
    assert result_a.length == result_b.length, context
    assert result_a.scaled_weight == result_b.scaled_weight, context


class TestHeuristicSolverParity:
    @pytest.mark.parametrize(
        "make_solver",
        [GreedySolver, TGENSolver, APPSolver],
        ids=["greedy", "tgen", "app"],
    )
    def test_solve_is_byte_identical(self, engine, workload, make_solver):
        solver = make_solver()
        for query in workload:
            instance = engine.build_instance(query)
            assert instance.dense is not None, "pipeline path must attach the substrate"
            a = solver.solve(instance.with_backend("dict"))
            b = solver.solve(instance.with_backend("dense"))
            _assert_identical(a, b, (solver.name, query.keywords, query.region))

    @pytest.mark.parametrize(
        "make_solver", [GreedySolver, TGENSolver, APPSolver],
        ids=["greedy", "tgen", "app"],
    )
    def test_topk_is_byte_identical(self, engine, workload, make_solver):
        solver = make_solver()
        for query in workload[:3]:
            instance = engine.build_instance(query)
            topk_dict = solver.solve_topk(instance.with_backend("dict"), k=3)
            topk_dense = solver.solve_topk(instance.with_backend("dense"), k=3)
            assert len(topk_dict.results) == len(topk_dense.results)
            for a, b in zip(topk_dict.results, topk_dense.results):
                _assert_identical(a, b, (solver.name, query.keywords))


class TestExactParity:
    def _tiny_window_instance(self, engine, dataset):
        # A window of ~2 blocks keeps the node count within Exact's reach.
        for anchor in (600.0, 900.0, 1200.0):
            region = Rectangle(anchor, anchor, anchor + 260.0, anchor + 260.0)
            query_keywords = ["restaurant", "cafe", "bar"]
            from repro.core.query import LCMSRQuery

            query = LCMSRQuery.create(query_keywords, delta=400.0, region=region)
            instance = engine.build_instance(query)
            if 0 < instance.num_candidate_nodes <= 16 and instance.has_relevant_nodes:
                return instance
        pytest.skip("no tiny window with relevant nodes in this dataset")

    def test_exact_is_byte_identical_on_tiny_windows(self, engine, dataset):
        instance = self._tiny_window_instance(engine, dataset)
        solver = ExactSolver(max_nodes=16)
        a = solver.solve(instance.with_backend("dict"))
        b = solver.solve(instance.with_backend("dense"))
        _assert_identical(a, b, "exact")
        # Dense-first route: the instance rebuilt from the substrate alone
        # (lazy dict view) must match too — this is what the serving layer's
        # substrate cache hands to the dict-consuming Exact oracle.
        rebound = instance.dense.to_problem_instance(instance.query)
        c = solver.solve(rebound)
        _assert_identical(a, c, "exact-dense-first")
        topk_a = solver.solve_topk(instance.with_backend("dict"), k=3)
        topk_c = solver.solve_topk(rebound, k=3)
        assert len(topk_a.results) == len(topk_c.results)
        for ra, rb in zip(topk_a.results, topk_c.results):
            _assert_identical(ra, rb, "exact-topk")


class TestDenseFirstRebindParity:
    """The serving layer rebinding path: substrate → instance → solver."""

    @pytest.mark.parametrize(
        "make_solver", [GreedySolver, TGENSolver, APPSolver],
        ids=["greedy", "tgen", "app"],
    )
    def test_rebound_instances_solve_identically(self, engine, workload, make_solver):
        solver = make_solver()
        for query in workload[:2]:
            instance = engine.build_instance(query)
            rebound = instance.dense.to_problem_instance(query)
            a = solver.solve(instance.with_backend("dict"))
            b = solver.solve(rebound)
            _assert_identical(a, b, (solver.name, query.keywords))
            assert list(rebound.weights.items()) == list(instance.weights.items())
