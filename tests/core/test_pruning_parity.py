"""Seeded pruning parity: bound-licensed skips vs the unpruned reference paths.

Bound-based pruning (:mod:`repro.core.bounds` plus the skip branches in the
Exact, Greedy and TGEN solvers and the instance builder's zero-mass window
skip) is required to be *skip-only*: for every solver, every scoring mode,
windowed as well as window-less queries, both graph backends (frozen CSR and
dict) and both solver substrates (dense and dict), the results under
``pruning="on"`` must be **byte-identical** to ``pruning="off"`` — same
regions, same tie-breaks, bit-equal floats. Only skip counters and runtime may
differ.

This is the pruning counterpart of the dense-substrate suite in
``test_solver_backend_parity.py`` (same dataset, seeds and workload shape, so
failures here isolate the pruning layer). Admissibility of the bounds
themselves is covered separately in ``test_bounds.py``.
"""

from __future__ import annotations

import pytest

from repro.core.app import APPSolver
from repro.core.exact import ExactSolver
from repro.core.greedy import GreedySolver
from repro.core.query import LCMSRQuery
from repro.core.tgen import TGENSolver
from repro.datasets.ny import build_ny_like
from repro.datasets.queries import generate_workload
from repro.engine import LCMSREngine
from repro.network.subgraph import Rectangle
from repro.service.bundle import IndexBundle
from repro.textindex.relevance import ScoringMode

SEED = 23
MODES = [
    ScoringMode.TEXT_RELEVANCE,
    ScoringMode.RATING_IF_MATCH,
    ScoringMode.LANGUAGE_MODEL,
]
# (scoring mode, freeze_network): frozen bundles exercise the CSR graph backend
# (and attach the dense substrate eagerly); unfrozen ones keep the dict-backed
# network, so with_backend("dense") builds the substrate on demand.
GRAPH_VARIANTS = [(mode, True) for mode in MODES] + [
    (ScoringMode.TEXT_RELEVANCE, False)
]


@pytest.fixture(scope="module")
def dataset():
    return build_ny_like(
        rows=14, cols=14, block_size=120.0, num_objects=420, num_clusters=6, seed=SEED
    )


@pytest.fixture(
    scope="module",
    params=GRAPH_VARIANTS,
    ids=lambda param: f"{param[0].value}-{'csr' if param[1] else 'dict'}",
)
def engine(request, dataset):
    mode, freeze = request.param
    bundle = IndexBundle.build(
        dataset.network,
        dataset.corpus,
        grid_resolution=16,
        scoring_mode=mode,
        freeze_network=freeze,
    )
    return LCMSREngine.from_bundle(bundle)


@pytest.fixture(scope="module")
def workload(dataset):
    windowed = generate_workload(
        dataset, num_queries=3, num_keywords=3, delta=700.0, area_km2=0.5, seed=SEED
    )
    # Three windowed queries plus one window-less one: the zero-mass window
    # skip only arms on windowed queries, while the TGEN edge skip and the
    # Greedy compaction fire on both shapes.
    return windowed + [windowed[0].with_region(None)]


def _assert_identical(result_a, result_b, context):
    assert result_a.region.nodes == result_b.region.nodes, context
    assert result_a.region.edges == result_b.region.edges, context
    assert result_a.weight == result_b.weight, context  # bit-equal, no approx
    assert result_a.length == result_b.length, context
    assert result_a.scaled_weight == result_b.scaled_weight, context


def _assert_topk_identical(topk_a, topk_b, context):
    assert len(topk_a.results) == len(topk_b.results), context
    for rank, (result_a, result_b) in enumerate(zip(topk_a.results, topk_b.results)):
        _assert_identical(result_a, result_b, (context, f"rank {rank}"))


class TestHeuristicPruningParity:
    @pytest.mark.parametrize(
        "make_solver",
        [GreedySolver, TGENSolver, APPSolver],
        ids=["greedy", "tgen", "app"],
    )
    def test_solve_is_byte_identical(self, engine, workload, make_solver):
        solver = make_solver()
        for query in workload:
            for backend in ("dict", "dense"):
                instance = engine.build_instance(query).with_backend(backend)
                pruned = solver.solve(instance.with_pruning("on"))
                reference = solver.solve(instance.with_pruning("off"))
                _assert_identical(
                    pruned,
                    reference,
                    (solver.name, backend, query.keywords, query.region),
                )

    @pytest.mark.parametrize(
        "make_solver",
        [GreedySolver, TGENSolver, APPSolver],
        ids=["greedy", "tgen", "app"],
    )
    def test_topk_is_byte_identical(self, engine, workload, make_solver):
        solver = make_solver()
        for query in workload[:2]:
            instance = engine.build_instance(query)
            pruned = solver.solve_topk(instance.with_pruning("on"), k=3)
            reference = solver.solve_topk(instance.with_pruning("off"), k=3)
            _assert_topk_identical(pruned, reference, (solver.name, query.keywords))

    def test_policy_auto_matches_policy_on(self, engine, workload):
        # "auto" currently resolves to enabled; it must stay on the pruned
        # side of the parity contract (and therefore also equal "off").
        solver = TGENSolver()
        query = workload[0]
        instance = engine.build_instance(query)
        auto = solver.solve(instance.with_pruning("auto"))
        on = solver.solve(instance.with_pruning("on"))
        _assert_identical(auto, on, "auto-vs-on")


class TestExactPruningParity:
    def _tiny_window_instances(self, engine):
        # Windows of ~2 blocks keep the node count within Exact's reach.
        instances = []
        for anchor in (600.0, 900.0, 1200.0):
            region = Rectangle(anchor, anchor, anchor + 260.0, anchor + 260.0)
            query = LCMSRQuery.create(
                ["restaurant", "cafe", "bar"], delta=400.0, region=region
            )
            instance = engine.build_instance(query)
            if 0 < instance.num_candidate_nodes <= 16 and instance.has_relevant_nodes:
                instances.append(instance)
        if not instances:
            pytest.skip("no tiny window with relevant nodes in this dataset")
        return instances

    def test_branch_and_bound_solve_is_byte_identical(self, engine):
        solver = ExactSolver(max_nodes=16)
        for instance in self._tiny_window_instances(engine):
            for backend in ("dict", "dense"):
                bound = instance.with_backend(backend)
                pruned = solver.solve(bound.with_pruning("on"))
                reference = solver.solve(bound.with_pruning("off"))
                _assert_identical(pruned, reference, ("exact", backend))

    @pytest.mark.parametrize("k", [1, 3, 5])
    def test_branch_and_bound_topk_matches_exhaustive_enumeration(self, engine, k):
        # pruning="off" runs the plain exhaustive enumerator, so this asserts
        # the B&B top-k returns the same k results in the same order as full
        # enumeration — the strongest form of the skip-only contract.
        solver = ExactSolver(max_nodes=16)
        for instance in self._tiny_window_instances(engine):
            pruned = solver.solve_topk(instance.with_pruning("on"), k=k)
            exhaustive = solver.solve_topk(instance.with_pruning("off"), k=k)
            _assert_topk_identical(pruned, exhaustive, ("exact-topk", k))

    def test_pruned_runs_report_skip_counters(self, engine):
        # The counters are the observable difference pruning IS allowed to
        # make: the pruned run must report them, the reference run reports
        # zero skips.
        solver = ExactSolver(max_nodes=16)
        for instance in self._tiny_window_instances(engine):
            pruned = solver.solve_topk(instance.with_pruning("on"), k=3)
            reference = solver.solve_topk(instance.with_pruning("off"), k=3)
            assert "exact_subsets_considered" in pruned.stats
            assert "exact_subsets_considered" in reference.stats
            assert (
                pruned.stats["exact_subsets_considered"]
                <= reference.stats["exact_subsets_considered"]
            )


class TestZeroMassWindowSkip:
    def test_unmatched_keywords_in_a_window_solve_identically(self, engine):
        # No object matches, so the window's mass bound is exactly 0.0 and the
        # builder skips the σ_v computation entirely under pruning — the
        # solved result must still match the unpruned build bit for bit.
        region = Rectangle(600.0, 600.0, 1200.0, 1200.0)
        query = LCMSRQuery.create(
            ["zzz-not-a-term-in-the-vocabulary"], delta=500.0, region=region
        )
        # The skip fires at *build* time, so the reference instance must come
        # from a build with pruning off (sibling views share weights and would
        # compare the skipped build against itself).
        unpruned_engine = LCMSREngine.from_bundle(engine.bundle, pruning="off")
        for make_solver in (GreedySolver, TGENSolver, APPSolver):
            solver = make_solver()
            pruned = solver.solve(engine.build_instance(query))
            reference = solver.solve(unpruned_engine.build_instance(query))
            _assert_identical(pruned, reference, (solver.name, "zero-mass"))
            assert pruned.region.is_empty

    def test_zero_mass_skip_keeps_the_window_graph_intact(self, engine):
        # The skip must only drop the σ computation, never graph nodes: |V_Q|
        # feeds TGEN's θ scaling, so both builds must agree on it exactly.
        region = Rectangle(600.0, 600.0, 1200.0, 1200.0)
        query = LCMSRQuery.create(
            ["zzz-not-a-term-in-the-vocabulary"], delta=500.0, region=region
        )
        pruned = engine.build_instance(query)
        reference = (
            LCMSREngine.from_bundle(engine.bundle, pruning="off").build_instance(query)
        )
        assert pruned.num_candidate_nodes == reference.num_candidate_nodes
        assert pruned.weights == {}


class TestDenseFirstRebindParity:
    """The serving layer's substrate-rebind path must preserve the policy."""

    def test_rebound_instances_carry_the_policy_and_solve_identically(
        self, engine, workload
    ):
        query = workload[0]
        instance = engine.build_instance(query)
        if instance.dense is None:
            pytest.skip("dict-backed bundle does not attach the substrate eagerly")
        for policy in ("on", "off"):
            rebound = instance.dense.to_problem_instance(query, pruning=policy)
            assert rebound.pruning == policy
            for make_solver in (GreedySolver, TGENSolver, APPSolver):
                solver = make_solver()
                a = solver.solve(instance.with_pruning(policy))
                b = solver.solve(rebound)
                _assert_identical(a, b, (solver.name, policy, "dense-first"))
