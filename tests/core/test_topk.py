"""Tests for the top-k LCMSR extension (Section 6.2)."""

from __future__ import annotations

import pytest

from repro.core import LCMSRQuery, build_instance
from repro.core.app import APPSolver
from repro.core.exact import ExactSolver
from repro.core.greedy import GreedySolver
from repro.core.tgen import TGENSolver
from repro.core.topk import node_overlap_fraction, solve_topk, total_weight, weights_are_sorted
from repro.network.builders import grid_network

from tests.conftest import PAPER_EXAMPLE_WEIGHTS


@pytest.fixture
def grid_instance():
    network = grid_network(4, 4, spacing=1.0)
    weights = {0: 0.9, 1: 0.8, 5: 0.7, 10: 0.6, 15: 0.9, 14: 0.5, 3: 0.4}
    query = LCMSRQuery.create(["t"], delta=2.0, k=3)
    return build_instance(network, query, node_weights=weights)


class TestSolvers:
    @pytest.mark.parametrize(
        "solver",
        [TGENSolver(alpha=0.2), APPSolver(alpha=0.3, beta=0.1), GreedySolver(0.2), ExactSolver()],
        ids=["tgen", "app", "greedy", "exact"],
    )
    def test_topk_basic_contract(self, grid_instance, solver):
        result = solve_topk(solver, grid_instance, k=3)
        assert 1 <= len(result) <= 3
        assert weights_are_sorted(result) or solver.name == "Greedy"
        node_sets = [r.region.nodes for r in result]
        assert len(set(node_sets)) == len(node_sets), "regions must be distinct"
        for entry in result:
            assert entry.region.satisfies(grid_instance.query.delta)
            entry.region.validate(grid_instance.graph)

    def test_best_of_topk_matches_single_query(self, grid_instance):
        solver = TGENSolver(alpha=0.2)
        single = solver.solve(grid_instance)
        topk = solver.solve_topk(grid_instance, k=3)
        assert topk.best is not None
        assert topk.best.weight == pytest.approx(single.weight)

    def test_greedy_topk_regions_are_disjoint(self, grid_instance):
        result = GreedySolver(0.2).solve_topk(grid_instance, k=3)
        assert node_overlap_fraction(result) == 0.0

    def test_k_one_equals_plain_query(self, paper_instance):
        solver = TGENSolver(alpha=0.15)
        single = solver.solve(paper_instance)
        topk = solver.solve_topk(paper_instance, k=1)
        assert len(topk) == 1
        assert topk.best.region.nodes == single.region.nodes

    def test_exact_topk_dominates_heuristics(self, grid_instance):
        exact = ExactSolver().solve_topk(grid_instance, k=3)
        tgen = TGENSolver(alpha=0.2).solve_topk(grid_instance, k=3)
        # The exact top-1 weight bounds any heuristic's top-1 weight.
        assert exact.best.weight >= tgen.best.weight - 1e-9

    def test_empty_instance_topk(self, paper_graph):
        query = LCMSRQuery.create(["t"], delta=3.0, k=3)
        instance = build_instance(paper_graph, query, node_weights={})
        for solver in (TGENSolver(), APPSolver(), GreedySolver()):
            assert len(solver.solve_topk(instance, 3)) == 0


class TestHelpers:
    def test_total_weight(self, grid_instance):
        result = TGENSolver(alpha=0.2).solve_topk(grid_instance, k=2)
        assert total_weight(result) == pytest.approx(sum(r.weight for r in result))

    def test_overlap_fraction_empty(self):
        from repro.core.result import TopKResult

        assert node_overlap_fraction(TopKResult([], "x")) == 0.0
