"""Accuracy of APP / TGEN / Greedy against the exact oracle on small random instances.

The paper can only report accuracy relative to TGEN; on small windows we can do better
and check all three heuristics against the provably optimal region. These tests pin
down the relationships the paper's evaluation relies on:

* no heuristic ever exceeds the optimum (sanity of the oracle and of the heuristics),
* every heuristic returns a feasible, connected region,
* TGEN with fine scaling is close to optimal,
* APP respects (with a wide margin) its (5 + ε) approximation guarantee — in practice
  it is far better, matching the paper's > 90 % observation.
"""

from __future__ import annotations

import pytest

from repro.core import LCMSRQuery, build_instance
from repro.core.app import APPSolver
from repro.core.exact import ExactSolver
from repro.core.greedy import GreedySolver
from repro.core.tgen import TGENSolver

from tests.conftest import random_weighted_network


def build_random_instance(seed: int, delta: float):
    network, weights = random_weighted_network(seed)
    query = LCMSRQuery.create(["t"], delta=delta)
    return build_instance(network, query, node_weights=weights)


SEEDS = [1, 2, 3, 4, 5, 6, 7, 8]
DELTAS = [1.5, 3.0, 5.0]


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("delta", DELTAS)
class TestAgainstOracle:
    def test_no_heuristic_beats_the_optimum(self, seed, delta):
        instance = build_random_instance(seed, delta)
        optimum = ExactSolver().solve(instance).weight
        for solver in (TGENSolver(alpha=0.05), APPSolver(alpha=0.2, beta=0.1), GreedySolver(0.2)):
            result = solver.solve(instance)
            assert result.weight <= optimum + 1e-9
            assert result.region.satisfies(delta)
            result.region.validate(instance.graph)

    def test_app_within_theoretical_bound(self, seed, delta):
        instance = build_random_instance(seed, delta)
        optimum = ExactSolver().solve(instance).weight
        result = APPSolver(alpha=0.2, beta=0.1).solve(instance)
        # Theorem 4: weight >= (1-α)/(5+5β) of the optimum. In practice APP is far
        # closer to the optimum; the hard bound must never be violated.
        bound = (1 - 0.2) / (5 + 5 * 0.1)
        assert result.weight >= bound * optimum - 1e-9


class TestAggregateAccuracy:
    def test_tgen_close_to_optimal_on_average(self):
        ratios = []
        for seed in SEEDS:
            instance = build_random_instance(seed, 3.0)
            optimum = ExactSolver().solve(instance).weight
            if optimum <= 0:
                continue
            ratios.append(TGENSolver(alpha=0.05).solve(instance).weight / optimum)
        assert sum(ratios) / len(ratios) >= 0.9

    def test_app_accuracy_at_least_greedy_like_levels(self):
        """APP's average accuracy must be high (paper: > 90 % of TGEN)."""
        app_ratios = []
        for seed in SEEDS:
            instance = build_random_instance(seed, 3.0)
            optimum = ExactSolver().solve(instance).weight
            if optimum <= 0:
                continue
            app_ratios.append(APPSolver(alpha=0.2, beta=0.1).solve(instance).weight / optimum)
        assert sum(app_ratios) / len(app_ratios) >= 0.75

    def test_ordering_tgen_at_least_greedy_on_average(self):
        """Averaged over seeds, TGEN is at least as accurate as Greedy (paper Fig. 15)."""
        tgen_total = 0.0
        greedy_total = 0.0
        for seed in SEEDS:
            instance = build_random_instance(seed, 3.0)
            tgen_total += TGENSolver(alpha=0.05).solve(instance).weight
            greedy_total += GreedySolver(0.2).solve(instance).weight
        assert tgen_total >= greedy_total - 1e-9
