"""Tests for the Region type (connectivity, validation, lengths)."""

from __future__ import annotations

import pytest

from repro.core.region import Region
from repro.exceptions import RegionError
from repro.network.builders import grid_network, paper_example_network


class TestConstruction:
    def test_from_nodes_edges(self):
        graph = paper_example_network()
        weights = {2: 0.3, 4: 0.2, 5: 0.2, 6: 0.4}
        region = Region.from_nodes_edges(
            graph, [2, 4, 5, 6], [(2, 6), (6, 5), (5, 4)], weights
        )
        assert region.weight == pytest.approx(1.1)
        assert region.length == pytest.approx(5.9)
        assert region.num_nodes == 4
        assert region.num_edges == 3
        assert region.is_tree()

    def test_single_node_and_empty(self):
        single = Region.single_node(7, 0.5)
        assert single.num_nodes == 1
        assert single.length == 0.0
        assert single.is_connected()
        empty = Region.empty()
        assert empty.is_empty
        assert empty.is_connected()
        assert empty.is_tree()

    def test_unknown_edge_rejected(self):
        graph = paper_example_network()
        with pytest.raises(RegionError):
            Region.from_nodes_edges(graph, [1, 3], [(1, 3)], {})

    def test_edge_with_endpoint_outside_region_rejected(self):
        graph = paper_example_network()
        with pytest.raises(RegionError):
            Region.from_nodes_edges(graph, [2], [(2, 6)], {})

    def test_disconnected_region_rejected(self):
        graph = paper_example_network()
        with pytest.raises(RegionError):
            Region.from_nodes_edges(graph, [1, 2, 4, 5], [(1, 2), (4, 5)], {})

    def test_validation_can_be_skipped_then_run(self):
        graph = paper_example_network()
        region = Region.from_nodes_edges(graph, [1, 4], [], {}, validate=False)
        assert not region.is_connected()
        with pytest.raises(RegionError):
            region.validate(graph)


class TestPredicates:
    def test_satisfies_length_constraint(self):
        graph = paper_example_network()
        region = Region.from_nodes_edges(graph, [2, 6], [(2, 6)], {2: 0.3, 6: 0.4})
        assert region.satisfies(1.5)
        assert region.satisfies(2.0)
        assert not region.satisfies(1.0)

    def test_contains_node_and_overlap(self):
        graph = paper_example_network()
        a = Region.from_nodes_edges(graph, [2, 6], [(2, 6)], {})
        b = Region.from_nodes_edges(graph, [6, 5], [(6, 5)], {})
        assert a.contains_node(2)
        assert not a.contains_node(5)
        assert a.overlap_nodes(b) == 1

    def test_cycle_region_is_connected_but_not_tree(self):
        graph = grid_network(2, 2, spacing=1.0)
        region = Region.from_nodes_edges(
            graph, [0, 1, 2, 3], [(0, 1), (1, 3), (3, 2), (2, 0)], {}
        )
        assert region.is_connected()
        assert not region.is_tree()

    def test_length_mismatch_detected(self):
        graph = paper_example_network()
        bad = Region(frozenset({2, 6}), frozenset({(2, 6)}), 99.0, 0.0)
        with pytest.raises(RegionError):
            bad.validate(graph)
