"""Tests for the Greedy expansion algorithm."""

from __future__ import annotations

import pytest

from repro.core import LCMSRQuery, build_instance
from repro.core.greedy import GreedySolver
from repro.exceptions import SolverError
from repro.network.builders import grid_network, paper_example_network, path_network

from tests.conftest import PAPER_EXAMPLE_WEIGHTS


class TestParameterValidation:
    def test_mu_range(self):
        GreedySolver(mu=0.0)
        GreedySolver(mu=1.0)
        with pytest.raises(SolverError):
            GreedySolver(mu=-0.1)
        with pytest.raises(SolverError):
            GreedySolver(mu=1.5)


class TestExpansion:
    def test_seed_is_heaviest_node(self, paper_graph):
        query = LCMSRQuery.create(["t"], delta=0.0)
        instance = build_instance(paper_graph, query, node_weights=PAPER_EXAMPLE_WEIGHTS)
        result = GreedySolver(mu=0.2).solve(instance)
        assert result.region.num_nodes == 1
        # σmax = 0.4 is shared by v3 and v6; either seed is acceptable.
        assert result.weight == pytest.approx(0.4)

    def test_respects_length_constraint(self, paper_graph):
        for delta in (0.0, 2.0, 4.0, 6.0, 10.0):
            query = LCMSRQuery.create(["t"], delta=delta)
            instance = build_instance(paper_graph, query, node_weights=PAPER_EXAMPLE_WEIGHTS)
            result = GreedySolver(mu=0.2).solve(instance)
            assert result.region.satisfies(delta)
            result.region.validate(paper_graph)

    def test_pure_weight_mode_prefers_heavy_neighbor(self):
        # From the seed, one neighbour is heavy but far, the other light but near.
        network = path_network(3, edge_length=1.0)
        network.add_node(10, -5.0, 0.0)
        network.add_edge(0, 10, 5.0)
        weights = {0: 1.0, 1: 0.1, 10: 0.9}
        query = LCMSRQuery.create(["t"], delta=5.0)
        instance = build_instance(network, query, node_weights=weights)
        result = GreedySolver(mu=0.0).solve(instance)  # weight only
        assert 10 in result.region.nodes

    def test_pure_length_mode_prefers_near_neighbor(self):
        network = path_network(3, edge_length=1.0)
        network.add_node(10, -5.0, 0.0)
        network.add_edge(0, 10, 5.0)
        weights = {0: 1.0, 1: 0.1, 10: 0.9}
        query = LCMSRQuery.create(["t"], delta=5.0)
        instance = build_instance(network, query, node_weights=weights)
        result = GreedySolver(mu=1.0).solve(instance)  # length only
        assert 1 in result.region.nodes
        assert 10 not in result.region.nodes

    def test_local_seed_trap(self):
        """Greedy seeds at the globally heaviest node even when a better cluster exists.

        This is exactly the weakness the paper's accuracy figures show: the isolated
        heavy node attracts the seed, and the budget cannot reach the (collectively
        heavier) far cluster any more.
        """
        network = path_network(7, edge_length=1.0)
        weights = {0: 1.0, 4: 0.8, 5: 0.8, 6: 0.8}
        query = LCMSRQuery.create(["t"], delta=2.0)
        instance = build_instance(network, query, node_weights=weights)
        greedy_weight = GreedySolver(mu=0.2).solve(instance).weight
        # The optimum is the cluster {4, 5, 6} with weight 2.4.
        assert greedy_weight < 2.4

    def test_empty_instance(self, paper_graph):
        query = LCMSRQuery.create(["t"], delta=5.0)
        instance = build_instance(paper_graph, query, node_weights={})
        assert GreedySolver().solve(instance).is_empty

    def test_deterministic(self, paper_instance):
        a = GreedySolver(mu=0.2).solve(paper_instance)
        b = GreedySolver(mu=0.2).solve(paper_instance)
        assert a.region.nodes == b.region.nodes

    def test_grid_expansion_is_connected(self):
        network = grid_network(5, 5, spacing=1.0)
        weights = {i: 0.1 + (i % 7) * 0.1 for i in range(25)}
        query = LCMSRQuery.create(["t"], delta=8.0)
        instance = build_instance(network, query, node_weights=weights)
        result = GreedySolver(mu=0.4).solve(instance)
        assert result.region.is_connected()
        assert result.region.is_tree()
        assert result.region.satisfies(8.0)
