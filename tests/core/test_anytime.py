"""The anytime tier: budgets, policies, result quality, budgeted solvers.

Three contracts under test:

* **Byte-identity** — an instance with ``budget=None`` (or a far-future budget
  that never expires) solves exactly like today's code: same region, same
  weight; the only difference a live budget may add is the ``quality_*`` stats.
* **Truncation** — an already-expired budget makes Greedy/TGEN/Exact stop at
  their next checkpoint and return best-so-far with ``budget_expired`` set.
* **Admissible regret** — for every truncated run, the true optimal weight
  (from an unbudgeted Exact run) minus the achieved weight never exceeds the
  reported ``quality_regret_bound``.
"""

from __future__ import annotations

import time

import pytest

from repro.core import topk as topk_module
from repro.core.anytime import (
    Budget,
    QueryPolicy,
    ResultQuality,
    annotate_anytime_stats,
)
from repro.core.app import APPSolver
from repro.core.exact import ExactSolver
from repro.core.greedy import GreedySolver
from repro.core.instance import build_instance
from repro.core.query import LCMSRQuery
from repro.core.tgen import TGENSolver

from tests.conftest import (
    PAPER_EXAMPLE_DELTA,
    PAPER_EXAMPLE_WEIGHTS,
    random_weighted_network,
)

SOLVERS = [GreedySolver(), TGENSolver(), ExactSolver(max_nodes=16)]


def expired_budget() -> Budget:
    """A budget whose deadline is already in the past, checked every call."""
    return Budget(deadline=time.perf_counter() - 1.0, check_interval=1)


def far_budget() -> Budget:
    """A budget that cannot expire during a test run."""
    return Budget(deadline=time.perf_counter() + 3600.0)


class TestBudget:
    def test_expired_latches_once_deadline_passes(self):
        budget = expired_budget()
        assert budget.expired() is True
        assert budget.expired() is True

    def test_check_interval_defers_the_clock_read(self):
        budget = Budget(deadline=time.perf_counter() - 1.0, check_interval=5)
        # The first four calls only decrement the counter.
        assert [budget.expired() for _ in range(4)] == [False] * 4
        assert budget.expired() is True

    def test_expired_now_ignores_the_interval(self):
        budget = Budget(deadline=time.perf_counter() - 1.0, check_interval=1000)
        assert budget.expired_now() is True

    def test_remaining_seconds_clamps_at_zero(self):
        assert expired_budget().remaining_seconds() == 0.0
        assert far_budget().remaining_seconds() > 3000.0

    def test_from_deadline_ms(self):
        budget = Budget.from_deadline_ms(50_000.0)
        assert not budget.expired_now()
        assert 49.0 < budget.remaining_seconds() <= 50.0

    def test_invalid_check_interval_rejected(self):
        with pytest.raises(ValueError):
            Budget(deadline=0.0, check_interval=0)


class TestQueryPolicy:
    def test_exact_is_the_default(self):
        assert QueryPolicy().is_exact
        assert QueryPolicy.parse(None) == QueryPolicy.exact()
        assert QueryPolicy.parse("") == QueryPolicy.exact()
        assert QueryPolicy.parse("exact") == QueryPolicy.exact()

    def test_parse_parenthesised_values(self):
        assert QueryPolicy.parse("anytime(200)") == QueryPolicy.anytime(200.0)
        assert QueryPolicy.parse("sampled(0.1)") == QueryPolicy.sampled(0.1)

    def test_explicit_arguments_override_parenthesised(self):
        assert QueryPolicy.parse("anytime(200)", deadline_ms=50.0) == QueryPolicy.anytime(50.0)
        assert QueryPolicy.parse("sampled", epsilon=0.25, seed=3) == QueryPolicy.sampled(0.25, seed=3)

    def test_parse_rejects_malformed_specs(self):
        for bad in ("anytime", "sampled", "anytime(", "anytime(abc)", "wat", "anytime)200("):
            with pytest.raises(ValueError):
                QueryPolicy.parse(bad)

    def test_validation(self):
        with pytest.raises(ValueError):
            QueryPolicy("anytime")
        with pytest.raises(ValueError):
            QueryPolicy.anytime(0.0)
        with pytest.raises(ValueError):
            QueryPolicy.sampled(0.0)
        with pytest.raises(ValueError):
            QueryPolicy.sampled(1.0)
        with pytest.raises(ValueError):
            QueryPolicy(kind="nope")

    def test_normalisation_makes_equal_policies_hash_equal(self):
        assert QueryPolicy("exact", deadline_ms=None, seed=9) == QueryPolicy.exact()
        assert hash(QueryPolicy.anytime(200)) == hash(QueryPolicy.anytime(200.0))

    def test_cache_tokens_are_disjoint_and_exact_is_the_legacy_token(self):
        tokens = {
            QueryPolicy.exact().cache_token(),
            QueryPolicy.anytime(200.0).cache_token(),
            QueryPolicy.anytime(100.0).cache_token(),
            QueryPolicy.sampled(0.1).cache_token(),
            QueryPolicy.sampled(0.1, seed=1).cache_token(),
            QueryPolicy.sampled(0.2).cache_token(),
        }
        assert len(tokens) == 6
        assert QueryPolicy.exact().cache_token() == "exact"

    def test_str_round_trips_through_parse(self):
        for policy in (QueryPolicy.exact(), QueryPolicy.anytime(150.0), QueryPolicy.sampled(0.25)):
            assert QueryPolicy.parse(str(policy)) == policy


class TestResultQuality:
    def test_stats_round_trip(self):
        for quality in (
            ResultQuality("exact"),
            ResultQuality("anytime", regret_bound=1.5),
            ResultQuality("sampled", ci=0.25),
        ):
            assert ResultQuality.from_stats(quality.to_stats()) == quality

    def test_absent_and_unknown_codes_decode_to_none(self):
        assert ResultQuality.from_stats({}) is None
        assert ResultQuality.from_stats({"quality_kind": 99.0}) is None

    def test_annotate_is_a_noop_without_budget(self, paper_instance):
        stats = {"expansions": 3.0}
        annotate_anytime_stats(paper_instance, 1.0, stats)
        assert stats == {"expansions": 3.0}

    def test_annotate_reports_zero_regret_when_in_budget(self, paper_instance):
        instance = paper_instance.with_budget(far_budget())
        stats = {}
        annotate_anytime_stats(instance, 1.0, stats)
        assert stats["quality_regret_bound"] == 0.0

    def test_annotate_defaults_to_the_positive_mass_ceiling(self, paper_instance):
        instance = paper_instance.with_budget(expired_budget())
        stats = {"budget_expired": 1.0}
        annotate_anytime_stats(instance, 0.4, stats)
        ceiling = sum(w for w in instance.weights.values() if w > 0.0)
        assert stats["quality_regret_bound"] == pytest.approx(ceiling - 0.4)


class TestBudgetedSolvers:
    @pytest.mark.parametrize("solver", SOLVERS, ids=lambda s: s.name)
    def test_far_budget_matches_unbudgeted_answer(self, paper_instance, solver):
        plain = solver.solve(paper_instance)
        budgeted = solver.solve(paper_instance.with_budget(far_budget()))
        assert budgeted.region.nodes == plain.region.nodes
        assert budgeted.weight == plain.weight
        assert budgeted.stats["quality_kind"] == 2.0
        assert budgeted.stats["quality_regret_bound"] == 0.0
        # The unbudgeted answer carries no quality entries at all.
        assert "quality_kind" not in plain.stats

    @pytest.mark.parametrize("solver", SOLVERS, ids=lambda s: s.name)
    @pytest.mark.parametrize("seed", [2, 9, 23])
    def test_truncated_regret_bound_is_admissible(self, solver, seed):
        network, weights = random_weighted_network(seed)
        query = LCMSRQuery.create(["t"], delta=3.0)
        instance = build_instance(network, query, node_weights=weights)
        optimum = ExactSolver(max_nodes=32).solve(instance).weight
        truncated = solver.solve(instance.with_budget(expired_budget()))
        assert truncated.stats["quality_kind"] == 2.0
        bound = truncated.stats["quality_regret_bound"]
        assert optimum - truncated.weight <= bound + 1e-9

    @pytest.mark.parametrize("solver", SOLVERS, ids=lambda s: s.name)
    def test_expired_budget_marks_the_run(self, paper_instance, solver):
        truncated = solver.solve(paper_instance.with_budget(expired_budget()))
        assert truncated.stats.get("budget_expired") == 1.0

    @pytest.mark.parametrize(
        "solver", [GreedySolver(), TGENSolver(), ExactSolver(max_nodes=16)],
        ids=lambda s: s.name,
    )
    def test_topk_far_budget_matches_unbudgeted(self, paper_instance, solver):
        plain = solver.solve_topk(paper_instance, 3)
        budgeted = solver.solve_topk(paper_instance.with_budget(far_budget()), 3)
        assert [r.region.nodes for r in budgeted] == [r.region.nodes for r in plain]
        assert [r.weight for r in budgeted] == [r.weight for r in plain]

    @pytest.mark.parametrize(
        "solver", [GreedySolver(), TGENSolver(), ExactSolver(max_nodes=16)],
        ids=lambda s: s.name,
    )
    def test_topk_truncation_still_returns_a_result_object(self, paper_instance, solver):
        truncated = solver.solve_topk(paper_instance.with_budget(expired_budget()), 3)
        assert truncated.stats.get("budget_expired") == 1.0

    @pytest.mark.parametrize("backend", ["dict", "dense"])
    def test_truncation_marks_both_backends(self, paper_instance, backend):
        instance = paper_instance.with_budget(expired_budget()).with_backend(backend)
        for solver in (GreedySolver(), TGENSolver()):
            truncated = solver.solve(instance)
            assert truncated.stats.get("budget_expired") == 1.0


class TestTopKProtocol:
    """Satellite: the SupportsTopK protocol matches every implementation."""

    @pytest.mark.parametrize(
        "solver",
        [APPSolver(), GreedySolver(), TGENSolver(), ExactSolver(max_nodes=16)],
        ids=lambda s: s.name,
    )
    def test_k_is_optional_everywhere(self, paper_instance, solver):
        import inspect

        parameter = inspect.signature(solver.solve_topk).parameters["k"]
        assert parameter.default is None
        # And the protocol's own declaration agrees.
        protocol_parameter = inspect.signature(
            topk_module.SupportsTopK.solve_topk
        ).parameters["k"]
        assert protocol_parameter.default is None

    def test_dispatcher_forwards_the_default(self, paper_instance):
        # k=None resolves to the query's own k (1 here).
        result = topk_module.solve_topk(GreedySolver(), paper_instance)
        assert len(result) <= 1
