"""Tests for node-weight scaling (Section 4.1, Theorem 2, Lemma 5, Example 2)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.scaling import ScalingContext
from repro.exceptions import SolverError


class TestPaperExample2:
    def test_theta_matches_example_2(self):
        # Figure 2 weights, α = 0.15, |VQ| = 6 -> θ = 0.15 * 0.4 / 6 = 0.01.
        weights = {1: 0.2, 2: 0.3, 3: 0.4, 4: 0.2, 5: 0.2, 6: 0.4}
        scaling = ScalingContext.build(weights, num_candidate_nodes=6, alpha=0.15)
        assert scaling.theta == pytest.approx(0.01)
        scaled = scaling.scale_weights(weights)
        assert scaled == {1: 20, 2: 30, 3: 40, 4: 20, 5: 20, 6: 40}

    def test_example_3_region_tuple_scaled_weight(self):
        # Example 3: the optimal region {v2,v4,v5,v6} has scaled weight 110.
        weights = {2: 0.3, 4: 0.2, 5: 0.2, 6: 0.4}
        scaling = ScalingContext.build(
            {1: 0.2, 2: 0.3, 3: 0.4, 4: 0.2, 5: 0.2, 6: 0.4}, 6, alpha=0.15
        )
        assert sum(scaling.scale(w) for w in weights.values()) == 110


class TestValidation:
    def test_alpha_must_be_positive(self):
        with pytest.raises(SolverError):
            ScalingContext.build({1: 0.5}, 1, alpha=0.0)

    def test_candidate_count_must_be_positive(self):
        with pytest.raises(SolverError):
            ScalingContext.build({1: 0.5}, 0, alpha=0.5)

    def test_all_zero_weights_rejected(self):
        with pytest.raises(SolverError):
            ScalingContext.build({1: 0.0}, 1, alpha=0.5)

    def test_alpha_for_buckets(self):
        assert ScalingContext.alpha_for_buckets(640, 64) == pytest.approx(10.0)
        with pytest.raises(SolverError):
            ScalingContext.alpha_for_buckets(10, 0)
        with pytest.raises(SolverError):
            ScalingContext.alpha_for_buckets(0, 4)


class TestBounds:
    def test_lemma5_bounds(self):
        weights = {i: 0.1 * (i + 1) for i in range(10)}
        scaling = ScalingContext.build(weights, 10, alpha=0.5)
        assert scaling.lower_bound() == math.floor(10 / 0.5)
        assert scaling.upper_bound() == 10 * math.floor(10 / 0.5)
        assert scaling.num_buckets() == scaling.max_scaled_node_weight() + 1

    def test_max_node_scales_to_lower_bound(self):
        weights = {1: 0.25, 2: 1.0}
        scaling = ScalingContext.build(weights, 2, alpha=0.4)
        assert scaling.scale(1.0) == scaling.max_scaled_node_weight()


class TestTheorem2Property:
    @settings(max_examples=80, deadline=None)
    @given(
        weights=st.lists(st.floats(0.01, 10.0, allow_nan=False), min_size=1, max_size=30),
        alpha=st.floats(0.05, 0.95),
        extra_nodes=st.integers(0, 20),
    )
    def test_scaled_optimum_preserves_weight(self, weights, alpha, extra_nodes):
        """The Theorem 2 machinery: σ - θ < θ·σ̂ <= σ for every node.

        Summed over any region this yields the paper's (1-α) preservation bound; the
        per-node inequality is the invariant the proof relies on.
        """
        weight_map = {i: w for i, w in enumerate(weights)}
        num_candidates = len(weights) + extra_nodes
        scaling = ScalingContext.build(weight_map, num_candidates, alpha)
        for sigma in weights:
            scaled = scaling.scale(sigma)
            assert scaling.theta * scaled <= sigma + 1e-12
            assert sigma - scaling.theta < scaling.theta * scaled + 1e-12

    @settings(max_examples=50, deadline=None)
    @given(
        weights=st.lists(st.floats(0.01, 10.0, allow_nan=False), min_size=2, max_size=20),
        alpha=st.floats(0.05, 0.9),
    )
    def test_region_weight_lower_bound(self, weights, alpha):
        """A whole region's unscaled weight is at least (1-α) of the true weight.

        Using the whole node set as the "region": Σ θ·σ̂ >= Σ σ - |VQ|·θ = Σ σ - α·σmax
        >= (1-α)·Σ σ because Σ σ >= σmax. This is exactly Theorem 2's argument.
        """
        weight_map = {i: w for i, w in enumerate(weights)}
        scaling = ScalingContext.build(weight_map, len(weights), alpha)
        total = sum(weights)
        reconstructed = sum(scaling.unscale(scaling.scale(w)) for w in weights)
        assert reconstructed >= (1 - alpha) * total - 1e-9
        assert reconstructed <= total + 1e-9
