"""Tests for the per-cell inverted index."""

from __future__ import annotations

import pytest

from repro.index.inverted import InvertedIndex
from repro.textindex.vector_space import VectorSpaceModel

from tests.conftest import make_small_corpus


@pytest.fixture
def indexed_corpus():
    corpus = make_small_corpus()
    vsm = VectorSpaceModel(corpus)
    index = InvertedIndex(vsm)
    index.add_objects(corpus)
    return corpus, vsm, index


class TestBuild:
    def test_vocabulary_and_counts(self, indexed_corpus):
        corpus, _, index = indexed_corpus
        assert "cafe" in index.vocabulary
        assert index.num_objects == len(corpus)
        assert index.num_postings == sum(len(obj.terms) for obj in corpus)

    def test_postings_contain_expected_objects(self, indexed_corpus):
        _, _, index = indexed_corpus
        postings = index.postings("cafe")
        assert {p.object_id for p in postings} == {0, 1}
        assert all(p.weight > 0 for p in postings)

    def test_postings_sorted_by_object_id(self, indexed_corpus):
        _, _, index = indexed_corpus
        postings = index.postings("restaurant")
        ids = [p.object_id for p in postings]
        assert ids == sorted(ids)

    def test_unknown_term_empty(self, indexed_corpus):
        _, _, index = indexed_corpus
        assert index.postings("zzz") == []

    def test_posting_weights_match_vsm(self, indexed_corpus):
        _, vsm, index = indexed_corpus
        for posting in index.postings("coffee"):
            assert posting.weight == pytest.approx(
                vsm.object_term_weight(posting.object_id, "coffee")
            )


class TestQueries:
    def test_candidate_objects(self, indexed_corpus):
        _, _, index = indexed_corpus
        assert index.candidate_objects(["cafe", "museum"]) == {0, 1, 7}

    def test_accumulate_scores_matches_direct_scoring(self, indexed_corpus):
        corpus, vsm, index = indexed_corpus
        query = vsm.query_vector(["cafe", "coffee"])
        via_index = index.accumulate_scores(dict(query.weights), query.norm)
        for object_id, score in via_index.items():
            assert score == pytest.approx(vsm.score(object_id, query))
        direct_positive = {
            obj.object_id for obj in corpus if vsm.score(obj, query) > 0
        }
        assert set(via_index) == direct_positive

    def test_accumulate_scores_zero_norm(self, indexed_corpus):
        _, _, index = indexed_corpus
        assert index.accumulate_scores({"cafe": 1.0}, 0.0) == {}
