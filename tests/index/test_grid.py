"""Tests for the uniform grid index."""

from __future__ import annotations

import pytest

from repro.exceptions import IndexError_
from repro.index.grid import GridIndex
from repro.network.builders import grid_network
from repro.network.subgraph import Rectangle
from repro.objects.corpus import ObjectCorpus
from repro.objects.geoobject import GeoTextualObject
from repro.objects.mapping import map_objects_to_network
from repro.textindex.vector_space import VectorSpaceModel

from tests.conftest import make_small_corpus


class TestConstruction:
    def test_invalid_resolution(self):
        with pytest.raises(IndexError_):
            GridIndex(make_small_corpus(), resolution=0)

    def test_empty_corpus_rejected(self):
        with pytest.raises(IndexError_):
            GridIndex(ObjectCorpus(), resolution=4)

    def test_nonempty_cells(self):
        grid = GridIndex(make_small_corpus(), resolution=4)
        assert 1 <= grid.num_nonempty_cells <= 8
        assert grid.resolution == 4

    def test_cell_rectangle_tiles_extent(self):
        grid = GridIndex(make_small_corpus(), resolution=4)
        extent = grid.extent
        first = grid.cell_rectangle(0, 0)
        last = grid.cell_rectangle(3, 3)
        assert first.min_x == pytest.approx(extent.min_x)
        assert last.max_x == pytest.approx(extent.max_x)


class TestSpatialFiltering:
    def test_objects_in_window(self):
        corpus = make_small_corpus()
        grid = GridIndex(corpus, resolution=4)
        window = Rectangle(0, 0, 100, 100)
        assert set(grid.objects_in_window(window)) == {0}
        everything = Rectangle(0, 0, 1000, 1000)
        assert set(grid.objects_in_window(everything)) == set(corpus.object_ids())

    def test_objects_on_window_border_included(self):
        corpus = make_small_corpus()
        grid = GridIndex(corpus, resolution=4)
        window = Rectangle(50, 50, 150, 150)  # objects 0 and 1 sit on the borders
        assert {0, 1} <= set(grid.objects_in_window(window))


class TestScoring:
    def test_score_objects_matches_direct_vsm(self):
        corpus = make_small_corpus()
        vsm = VectorSpaceModel(corpus)
        grid = GridIndex(corpus, resolution=4, vsm=vsm)
        window = Rectangle(0, 0, 1000, 1000)
        via_grid = grid.score_objects(["cafe", "coffee"], window)
        query = vsm.query_vector(["cafe", "coffee"])
        for object_id, score in via_grid.items():
            assert score == pytest.approx(vsm.score(object_id, query))
        assert set(via_grid) == {0, 1, 6}

    def test_score_objects_respects_window(self):
        corpus = make_small_corpus()
        grid = GridIndex(corpus, resolution=8)
        window = Rectangle(0, 0, 100, 100)  # only object 0
        scores = grid.score_objects(["cafe"], window)
        assert set(scores) == {0}

    def test_empty_keywords(self):
        grid = GridIndex(make_small_corpus(), resolution=4)
        assert grid.score_objects([], Rectangle(0, 0, 1000, 1000)) == {}

    def test_node_weights_aggregate_per_node(self):
        corpus = make_small_corpus()
        network = grid_network(4, 4, spacing=100.0)
        mapping = map_objects_to_network(network, corpus)
        grid = GridIndex(corpus, resolution=4)
        window = Rectangle(0, 0, 1000, 1000)
        weights = grid.node_weights(["cafe", "coffee"], window, mapping)
        assert weights
        # Every weighted node must host at least one scored object.
        scored_nodes = {mapping.node_of(o) for o in (0, 1, 6)}
        assert set(weights) == scored_nodes
        assert all(value > 0 for value in weights.values())

    def test_node_weights_candidate_restriction(self):
        corpus = make_small_corpus()
        network = grid_network(4, 4, spacing=100.0)
        mapping = map_objects_to_network(network, corpus)
        grid = GridIndex(corpus, resolution=4)
        window = Rectangle(0, 0, 1000, 1000)
        node_of_0 = mapping.node_of(0)
        weights = grid.node_weights(["cafe"], window, mapping, candidate_nodes={node_of_0})
        assert set(weights) <= {node_of_0}
