"""Tests for the STR-packed R-tree."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import IndexError_
from repro.index.rtree import RTree, RTreeEntry
from repro.network.subgraph import Rectangle


def make_entries(points):
    return [RTreeEntry(i, x, y) for i, (x, y) in enumerate(points)]


class TestConstruction:
    def test_empty_tree(self):
        tree = RTree([])
        assert len(tree) == 0
        assert tree.height() == 0
        assert tree.range_query(Rectangle(0, 0, 10, 10)) == []

    def test_invalid_capacity(self):
        with pytest.raises(IndexError_):
            RTree([], leaf_capacity=1)

    def test_height_grows_with_size(self):
        rng = random.Random(1)
        entries = make_entries([(rng.uniform(0, 100), rng.uniform(0, 100)) for _ in range(500)])
        tree = RTree(entries, leaf_capacity=8)
        assert tree.height() >= 2
        assert len(tree) == 500


class TestRangeQueries:
    def test_simple_window(self):
        entries = make_entries([(0, 0), (5, 5), (10, 10), (20, 20)])
        tree = RTree(entries, leaf_capacity=2)
        found = tree.range_query(Rectangle(4, 4, 11, 11))
        assert {e.item_id for e in found} == {1, 2}
        assert tree.count_in(Rectangle(-1, -1, 100, 100)) == 4

    def test_borders_inclusive(self):
        entries = make_entries([(0, 0), (10, 10)])
        tree = RTree(entries)
        found = tree.range_query(Rectangle(0, 0, 10, 10))
        assert len(found) == 2

    @settings(max_examples=40, deadline=None)
    @given(
        points=st.lists(
            st.tuples(st.floats(0, 100), st.floats(0, 100)), min_size=1, max_size=200
        ),
        window=st.tuples(
            st.floats(0, 100), st.floats(0, 100), st.floats(0, 100), st.floats(0, 100)
        ),
        capacity=st.integers(2, 16),
    )
    def test_matches_linear_scan(self, points, window, capacity):
        x1, y1, x2, y2 = window
        rect = Rectangle(min(x1, x2), min(y1, y2), max(x1, x2), max(y1, y2))
        entries = make_entries(points)
        tree = RTree(entries, leaf_capacity=capacity)
        expected = {e.item_id for e in entries if rect.contains(e.x, e.y)}
        found = {e.item_id for e in tree.range_query(rect)}
        assert found == expected
