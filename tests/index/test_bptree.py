"""Unit and property-based tests for the B+-tree."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import IndexError_
from repro.index.bptree import BPlusTree


class TestBasics:
    def test_empty_tree(self):
        tree = BPlusTree(order=4)
        assert len(tree) == 0
        assert tree.get(1) is None
        assert tree.get(1, "default") == "default"
        assert 1 not in tree
        assert list(tree.items()) == []

    def test_insert_and_get(self):
        tree = BPlusTree(order=4)
        tree.insert(5, "five")
        tree.insert(1, "one")
        tree.insert(9, "nine")
        assert tree.get(5) == "five"
        assert tree.get(1) == "one"
        assert 9 in tree
        assert len(tree) == 3

    def test_overwrite_existing_key(self):
        tree = BPlusTree(order=4)
        tree.insert(1, "a")
        tree.insert(1, "b")
        assert tree.get(1) == "b"
        assert len(tree) == 1

    def test_order_validation(self):
        with pytest.raises(IndexError_):
            BPlusTree(order=2)

    def test_items_sorted(self):
        tree = BPlusTree(order=4)
        keys = [7, 3, 9, 1, 5, 2, 8, 4, 6, 0]
        for key in keys:
            tree.insert(key, key * 10)
        assert [k for k, _ in tree.items()] == sorted(keys)
        assert list(tree.keys()) == sorted(keys)

    def test_splits_increase_height(self):
        tree = BPlusTree(order=3)
        for key in range(30):
            tree.insert(key, key)
        assert tree.height() > 1
        tree.check_invariants()

    def test_tuple_keys(self):
        tree = BPlusTree(order=4)
        tree.insert(("cafe", 3), 0.5)
        tree.insert(("cafe", 1), 0.7)
        tree.insert(("bar", 9), 0.2)
        assert tree.get(("cafe", 1)) == 0.7
        assert [k for k, _ in tree.items()] == [("bar", 9), ("cafe", 1), ("cafe", 3)]


class TestRangeScan:
    def test_inclusive_bounds(self):
        tree = BPlusTree(order=4)
        for key in range(20):
            tree.insert(key, key)
        scanned = [k for k, _ in tree.range_scan(5, 10)]
        assert scanned == [5, 6, 7, 8, 9, 10]

    def test_empty_range(self):
        tree = BPlusTree(order=4)
        for key in range(10):
            tree.insert(key, key)
        assert list(tree.range_scan(8, 3)) == []
        assert list(tree.range_scan(100, 200)) == []

    def test_range_spanning_leaves(self):
        tree = BPlusTree(order=3)
        for key in range(100):
            tree.insert(key, key)
        scanned = [k for k, _ in tree.range_scan(13, 77)]
        assert scanned == list(range(13, 78))

    def test_postings_style_scan(self):
        tree = BPlusTree(order=4)
        for object_id in (4, 1, 9):
            tree.insert(("cafe", object_id), 0.1 * object_id)
        for object_id in (2, 8):
            tree.insert(("bar", object_id), 0.2)
        cafe = [k for k, _ in tree.range_scan(("cafe", -1), ("cafe", 2**63))]
        assert cafe == [("cafe", 1), ("cafe", 4), ("cafe", 9)]


class TestProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        entries=st.lists(st.integers(-10_000, 10_000), min_size=0, max_size=300),
        order=st.integers(3, 16),
    )
    def test_matches_dict_semantics(self, entries, order):
        tree = BPlusTree(order=order)
        reference = {}
        for key in entries:
            tree.insert(key, key * 2)
            reference[key] = key * 2
        assert len(tree) == len(reference)
        assert [k for k, _ in tree.items()] == sorted(reference)
        for key in reference:
            assert tree.get(key) == reference[key]
        tree.check_invariants()

    @settings(max_examples=40, deadline=None)
    @given(
        entries=st.lists(st.integers(0, 500), min_size=1, max_size=200),
        low=st.integers(0, 500),
        high=st.integers(0, 500),
    )
    def test_range_scan_matches_filter(self, entries, low, high):
        tree = BPlusTree(order=5)
        reference = {}
        for key in entries:
            tree.insert(key, str(key))
            reference[key] = str(key)
        expected = sorted(k for k in reference if low <= k <= high)
        assert [k for k, _ in tree.range_scan(low, high)] == expected

    def test_large_random_workload_invariants(self):
        rng = random.Random(0)
        tree = BPlusTree(order=8)
        for _ in range(5000):
            tree.insert(rng.randrange(100_000), rng.random())
        tree.check_invariants()
