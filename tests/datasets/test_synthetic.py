"""Tests for synthetic object generation and dataset assembly."""

from __future__ import annotations

import pytest

from repro.datasets.synthetic import (
    SyntheticDataset,
    assemble_dataset,
    generate_objects_on_network,
    iter_objects_on_network,
)
from repro.datasets.vocab import PLACES_VOCABULARY
from repro.exceptions import DatasetError
from repro.network.builders import grid_network


@pytest.fixture(scope="module")
def network():
    return grid_network(10, 10, spacing=100.0)


class TestObjectGeneration:
    def test_counts_and_determinism(self, network):
        a = generate_objects_on_network(network, 300, seed=5)
        b = generate_objects_on_network(network, 300, seed=5)
        assert len(a) == 300
        assert len(b) == 300
        assert {o.object_id for o in a} == set(range(300))
        coords_a = sorted((o.x, o.y) for o in a)
        coords_b = sorted((o.x, o.y) for o in b)
        assert coords_a == coords_b

    def test_different_seed_different_objects(self, network):
        a = generate_objects_on_network(network, 100, seed=5)
        b = generate_objects_on_network(network, 100, seed=6)
        assert sorted((o.x, o.y) for o in a) != sorted((o.x, o.y) for o in b)

    def test_objects_near_network_extent(self, network):
        corpus = generate_objects_on_network(network, 200, seed=1)
        min_x, min_y, max_x, max_y = network.bounding_box()
        for obj in corpus:
            assert min_x - 200 <= obj.x <= max_x + 200
            assert min_y - 200 <= obj.y <= max_y + 200

    def test_head_terms_are_frequent(self, network):
        corpus = generate_objects_on_network(network, 500, seed=2)
        frequencies = corpus.term_frequencies()
        head_df = max(frequencies.get(t, 0) for t in PLACES_VOCABULARY.terms[:20])
        assert head_df >= 20  # the hot-spot signature terms are common

    def test_invalid_parameters(self, network):
        with pytest.raises(DatasetError):
            generate_objects_on_network(network, 0)
        with pytest.raises(DatasetError):
            generate_objects_on_network(network, 10, cluster_fraction=1.5)
        with pytest.raises(DatasetError):
            generate_objects_on_network(network, 10, cluster_fraction=0.8, hub_fraction=0.5)

    def test_iterator_emits_exactly_the_collected_corpus(self, network):
        """The streaming generator and the eager builder are the same stream."""
        collected = generate_objects_on_network(network, 300, seed=5)
        streamed = list(iter_objects_on_network(network, 300, seed=5))
        assert len(streamed) == len(collected)
        by_id = {obj.object_id: obj for obj in collected}
        for obj in streamed:
            twin = by_id[obj.object_id]
            assert (obj.x, obj.y, obj.rating) == (twin.x, twin.y, twin.rating)
            assert obj.keywords == twin.keywords

    def test_iterator_validates_before_first_yield(self, network):
        with pytest.raises(DatasetError):
            iter_objects_on_network(network, 0)


class TestAssembledDataset:
    def test_assemble_wires_everything(self, network):
        corpus = generate_objects_on_network(network, 200, seed=3)
        dataset = assemble_dataset("test-ds", network, corpus, PLACES_VOCABULARY)
        assert isinstance(dataset, SyntheticDataset)
        assert dataset.name == "test-ds"
        assert dataset.mapping.num_mapped == 200
        assert dataset.grid.num_nonempty_cells > 0
        description = dataset.describe()
        assert description["objects"] == 200
        assert description["nodes"] == network.num_nodes
        extent = dataset.extent
        assert extent.area > 0
