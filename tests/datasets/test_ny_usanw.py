"""Tests for the NY-like and USANW-like dataset builders (the paper's two workloads)."""

from __future__ import annotations

import pytest

from repro.network.stats import compute_stats


class TestNYLike:
    def test_headline_shape(self, tiny_ny_dataset):
        stats = compute_stats(tiny_ny_dataset.network)
        assert stats.num_nodes == 400  # 20 x 20 builder fixture
        assert stats.num_components == 1
        assert 2.0 <= stats.average_degree <= 4.5
        assert len(tiny_ny_dataset.corpus) == 900

    def test_objects_mapped_and_indexed(self, tiny_ny_dataset):
        assert tiny_ny_dataset.mapping.num_mapped == len(tiny_ny_dataset.corpus)
        assert tiny_ny_dataset.grid.num_nonempty_cells > 10

    def test_places_vocabulary_used(self, tiny_ny_dataset):
        vocabulary = tiny_ny_dataset.corpus.vocabulary()
        assert any(term in vocabulary for term in ("restaurant", "cafe", "bar", "pizza"))

    def test_co_location_present(self, tiny_ny_dataset):
        """Some node must host several objects sharing a category — the co-location
        phenomenon the query exploits (paper Section 1, point three)."""
        best = 0
        for node_id, object_ids in tiny_ny_dataset.mapping.node_to_objects.items():
            best = max(best, len(object_ids))
        assert best >= 3


class TestUSANWLike:
    def test_headline_shape(self, tiny_usanw_dataset):
        stats = compute_stats(tiny_usanw_dataset.network)
        assert stats.num_nodes == 400
        assert stats.num_components == 1
        assert len(tiny_usanw_dataset.corpus) == 400

    def test_sparser_than_ny(self, tiny_ny_dataset, tiny_usanw_dataset):
        ny_stats = compute_stats(tiny_ny_dataset.network)
        usanw_stats = compute_stats(tiny_usanw_dataset.network)
        # The USANW-like network has lower density (objects per node and average degree)
        ny_density = len(tiny_ny_dataset.corpus) / ny_stats.num_nodes
        usanw_density = len(tiny_usanw_dataset.corpus) / usanw_stats.num_nodes
        assert usanw_density <= ny_density

    def test_flickr_vocabulary_used(self, tiny_usanw_dataset):
        vocabulary = tiny_usanw_dataset.corpus.vocabulary()
        assert any(term in vocabulary for term in ("sunset", "hiking", "beach", "lake"))

    def test_datasets_are_deterministic(self):
        from repro.datasets.usanw import build_usanw_like

        a = build_usanw_like(num_nodes=150, extent=3000.0, num_objects=150, num_clusters=4, seed=8)
        b = build_usanw_like(num_nodes=150, extent=3000.0, num_objects=150, num_clusters=4, seed=8)
        assert a.network.num_edges == b.network.num_edges
        assert sorted(o.terms for o in a.corpus) == sorted(o.terms for o in b.corpus)
