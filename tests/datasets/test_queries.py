"""Tests for the query-workload generator (paper Section 7.1)."""

from __future__ import annotations

import pytest

from repro.datasets.queries import QueryWorkloadGenerator, WorkloadSpec, generate_workload


class TestWorkloadGeneration:
    def test_counts_and_shape(self, tiny_ny_dataset):
        queries = generate_workload(
            tiny_ny_dataset, num_queries=10, num_keywords=2, delta=1500.0, area_km2=1.0, seed=3
        )
        assert len(queries) == 10
        for query in queries:
            assert query.keyword_count == 2
            assert query.delta == 1500.0
            assert query.region is not None
            assert query.region.area == pytest.approx(1.0 * 1e6, rel=1e-6)

    def test_deterministic_given_seed(self, tiny_ny_dataset):
        a = generate_workload(tiny_ny_dataset, num_queries=5, seed=9, area_km2=1.0, delta=1500.0)
        b = generate_workload(tiny_ny_dataset, num_queries=5, seed=9, area_km2=1.0, delta=1500.0)
        assert [q.keywords for q in a] == [q.keywords for q in b]
        assert [q.region.min_x for q in a] == [q.region.min_x for q in b]

    def test_different_seeds_differ(self, tiny_ny_dataset):
        a = generate_workload(tiny_ny_dataset, num_queries=5, seed=9, area_km2=1.0, delta=1500.0)
        b = generate_workload(tiny_ny_dataset, num_queries=5, seed=10, area_km2=1.0, delta=1500.0)
        assert [q.keywords for q in a] != [q.keywords for q in b]

    def test_keywords_occur_inside_the_query_area(self, tiny_ny_dataset):
        queries = generate_workload(
            tiny_ny_dataset, num_queries=8, num_keywords=3, delta=1500.0, area_km2=1.0, seed=4
        )
        for query in queries:
            in_area = tiny_ny_dataset.corpus.terms_in_rectangle(query.region)
            for keyword in query.keywords:
                assert keyword in in_area

    def test_window_clamped_to_extent(self, tiny_ny_dataset):
        queries = generate_workload(
            tiny_ny_dataset, num_queries=20, num_keywords=1, delta=1500.0, area_km2=1.0, seed=5
        )
        extent = tiny_ny_dataset.extent
        for query in queries:
            assert query.region.min_x >= extent.min_x - 1e-6
            assert query.region.max_x <= extent.max_x + 1e-6

    def test_distinct_keywords_per_query(self, tiny_ny_dataset):
        queries = generate_workload(
            tiny_ny_dataset, num_queries=10, num_keywords=3, delta=1500.0, area_km2=1.0, seed=6
        )
        for query in queries:
            assert len(set(query.keywords)) == 3

    def test_spec_dataclass_defaults(self):
        spec = WorkloadSpec()
        assert spec.num_queries == 50
        assert spec.num_keywords == 3
