"""Tests for the Zipfian vocabularies."""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.datasets.vocab import (
    FLICKR_VOCABULARY,
    PLACES_VOCABULARY,
    Vocabulary,
)
from repro.exceptions import DatasetError


class TestConstruction:
    def test_head_terms_first(self):
        vocab = Vocabulary(head_terms=["alpha", "beta"], num_tail_terms=5)
        assert vocab.terms[:2] == ["alpha", "beta"]
        assert vocab.size == 7
        assert vocab.rank_of("alpha") == 0

    def test_duplicate_head_terms_deduplicated(self):
        vocab = Vocabulary(head_terms=["a", "a", "b"], num_tail_terms=0)
        assert vocab.size == 2

    def test_invalid_parameters(self):
        with pytest.raises(DatasetError):
            Vocabulary(head_terms=["a"], num_tail_terms=-1)
        with pytest.raises(DatasetError):
            Vocabulary(head_terms=[], num_tail_terms=0)

    def test_unknown_rank_raises(self):
        vocab = Vocabulary(head_terms=["a"], num_tail_terms=0)
        with pytest.raises(DatasetError):
            vocab.rank_of("zzz")

    def test_default_vocabularies(self):
        assert "restaurant" in PLACES_VOCABULARY.terms[:50]
        assert "cafe" in PLACES_VOCABULARY.terms[:50]
        assert FLICKR_VOCABULARY.size > PLACES_VOCABULARY.size


class TestSampling:
    def test_deterministic_given_rng(self):
        vocab = Vocabulary(head_terms=["a", "b", "c"], num_tail_terms=50)
        first = [vocab.sample_term(random.Random(3)) for _ in range(5)]
        second = [vocab.sample_term(random.Random(3)) for _ in range(5)]
        assert first == second

    def test_zipf_skew_head_dominates(self):
        vocab = Vocabulary(head_terms=["top", "second"], num_tail_terms=500, zipf_exponent=1.1)
        rng = random.Random(7)
        counts = Counter(vocab.sample_term(rng) for _ in range(5000))
        assert counts["top"] > counts["second"]
        assert counts["top"] > 5000 / vocab.size * 5  # far above uniform share

    def test_description_lengths(self):
        vocab = Vocabulary(head_terms=["a"], num_tail_terms=20)
        rng = random.Random(1)
        for _ in range(50):
            description = vocab.sample_description(rng, 2, 4)
            assert 2 <= len(description) <= 4

    def test_invalid_description_bounds(self):
        vocab = Vocabulary(head_terms=["a"], num_tail_terms=0)
        with pytest.raises(DatasetError):
            vocab.sample_description(random.Random(1), 0, 2)
        with pytest.raises(DatasetError):
            vocab.sample_description(random.Random(1), 3, 2)
