"""Tests for the geo-textual object model."""

from __future__ import annotations

import pytest

from repro.exceptions import DatasetError
from repro.objects.geoobject import GeoTextualObject


class TestCreation:
    def test_create_counts_term_frequencies(self):
        obj = GeoTextualObject.create(1, 0.0, 0.0, ["Cafe", "cafe", "coffee"])
        assert obj.term_frequency("cafe") == 2
        assert obj.term_frequency("coffee") == 1
        assert obj.term_frequency("missing") == 0

    def test_create_lowercases_and_strips(self):
        obj = GeoTextualObject.create(1, 0, 0, ["  Pizza ", "PIZZA", ""])
        assert set(obj.terms) == {"pizza"}
        assert obj.term_frequency("pizza") == 2

    def test_empty_description_allowed(self):
        obj = GeoTextualObject.create(1, 0, 0, [])
        assert obj.terms == ()
        assert not obj.contains_any(["anything"])

    def test_negative_rating_rejected(self):
        with pytest.raises(DatasetError):
            GeoTextualObject.create(1, 0, 0, ["x"], rating=-1.0)

    def test_non_positive_frequency_rejected(self):
        with pytest.raises(DatasetError):
            GeoTextualObject(1, 0, 0, {"cafe": 0})


class TestAccessors:
    def test_location(self):
        obj = GeoTextualObject.create(3, 12.5, -7.25, ["bar"])
        assert obj.location() == (12.5, -7.25)

    def test_contains_any(self):
        obj = GeoTextualObject.create(1, 0, 0, ["cafe", "bakery"])
        assert obj.contains_any(["restaurant", "bakery"])
        assert not obj.contains_any(["restaurant", "pizza"])
        assert not obj.contains_any([])

    def test_frozen(self):
        obj = GeoTextualObject.create(1, 0, 0, ["cafe"])
        with pytest.raises(AttributeError):
            obj.x = 5.0  # type: ignore[misc]
