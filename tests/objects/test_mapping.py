"""Tests for the object → nearest-node mapping."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import DatasetError, GraphError
from repro.network.builders import grid_network
from repro.network.graph import RoadNetwork
from repro.objects.corpus import ObjectCorpus
from repro.objects.geoobject import GeoTextualObject
from repro.objects.mapping import map_objects_to_network, nearest_node


def brute_force_nearest(network: RoadNetwork, x: float, y: float) -> int:
    best = None
    best_dist = None
    for node in network.nodes():
        dist = (node.x - x) ** 2 + (node.y - y) ** 2
        if best_dist is None or dist < best_dist or (dist == best_dist and node.node_id < best):
            best, best_dist = node.node_id, dist
    return best


class TestNearestNode:
    def test_simple(self):
        network = grid_network(3, 3, spacing=10.0)
        assert nearest_node(network, 0.1, 0.1) == 0
        assert nearest_node(network, 21.0, 21.0) == 8

    def test_empty_network_raises(self):
        with pytest.raises(GraphError):
            nearest_node(RoadNetwork(), 0, 0)


class TestMapping:
    def test_objects_map_to_nearest_nodes(self):
        network = grid_network(3, 3, spacing=10.0)
        corpus = ObjectCorpus(
            [
                GeoTextualObject.create(0, 0.5, 0.5, ["a"]),
                GeoTextualObject.create(1, 19.0, 19.0, ["b"]),
                GeoTextualObject.create(2, 9.0, 1.0, ["c"]),
            ]
        )
        mapping = map_objects_to_network(network, corpus)
        assert mapping.node_of(0) == 0
        assert mapping.node_of(1) == 8
        assert mapping.node_of(2) == 1
        assert mapping.num_mapped == 3
        assert set(mapping.objects_at(0)) == {0}

    def test_unmapped_object_raises(self):
        network = grid_network(2, 2, spacing=10.0)
        mapping = map_objects_to_network(network, ObjectCorpus())
        with pytest.raises(DatasetError):
            mapping.node_of(5)
        assert mapping.objects_at(0) == []
        assert mapping.nodes_with_objects() == []

    def test_grid_accelerated_matches_brute_force(self):
        rng = random.Random(11)
        network = grid_network(8, 8, spacing=13.0, jitter=4.0, rng=rng)
        objects = [
            GeoTextualObject.create(i, rng.uniform(-10, 110), rng.uniform(-10, 110), ["x"])
            for i in range(120)
        ]
        mapping = map_objects_to_network(network, ObjectCorpus(objects))
        for obj in objects:
            expected = brute_force_nearest(network, obj.x, obj.y)
            expected_node = network.node(expected)
            mapped_node = network.node(mapping.node_of(obj.object_id))
            expected_dist = (expected_node.x - obj.x) ** 2 + (expected_node.y - obj.y) ** 2
            mapped_dist = (mapped_node.x - obj.x) ** 2 + (mapped_node.y - obj.y) ** 2
            assert mapped_dist == pytest.approx(expected_dist, rel=1e-9)

    @settings(max_examples=25, deadline=None)
    @given(
        coords=st.lists(
            st.tuples(st.floats(-5, 105), st.floats(-5, 105)), min_size=1, max_size=20
        )
    )
    def test_mapping_property_every_object_assigned(self, coords):
        network = grid_network(5, 5, spacing=25.0)
        corpus = ObjectCorpus(
            [GeoTextualObject.create(i, x, y, ["t"]) for i, (x, y) in enumerate(coords)]
        )
        mapping = map_objects_to_network(network, corpus)
        assert mapping.num_mapped == len(coords)
        total_assigned = sum(len(v) for v in mapping.node_to_objects.values())
        assert total_assigned == len(coords)
