"""Tests for the object corpus and its statistics."""

from __future__ import annotations

import pytest

from repro.exceptions import DatasetError
from repro.network.subgraph import Rectangle
from repro.objects.corpus import ObjectCorpus
from repro.objects.geoobject import GeoTextualObject

from tests.conftest import make_small_corpus


class TestMutation:
    def test_add_and_len(self):
        corpus = ObjectCorpus()
        corpus.add(GeoTextualObject.create(1, 0, 0, ["cafe"]))
        assert len(corpus) == 1
        assert 1 in corpus

    def test_duplicate_id_rejected(self):
        corpus = ObjectCorpus()
        corpus.add(GeoTextualObject.create(1, 0, 0, ["cafe"]))
        with pytest.raises(DatasetError):
            corpus.add(GeoTextualObject.create(1, 1, 1, ["bar"]))

    def test_constructor_accepts_iterable(self):
        objects = [GeoTextualObject.create(i, i, i, ["x"]) for i in range(3)]
        corpus = ObjectCorpus(objects)
        assert len(corpus) == 3

    def test_get_unknown_raises(self):
        with pytest.raises(DatasetError):
            ObjectCorpus().get(9)


class TestStatistics:
    def test_document_frequency(self):
        corpus = make_small_corpus()
        assert corpus.document_frequency("cafe") == 2
        assert corpus.document_frequency("restaurant") == 2
        assert corpus.document_frequency("pharmacy") == 1
        assert corpus.document_frequency("missing") == 0

    def test_document_frequency_counts_objects_not_occurrences(self):
        corpus = ObjectCorpus()
        corpus.add(GeoTextualObject.create(1, 0, 0, ["cafe", "cafe", "cafe"]))
        assert corpus.document_frequency("cafe") == 1

    def test_vocabulary(self):
        corpus = make_small_corpus()
        assert "coffee" in corpus.vocabulary()
        assert corpus.vocabulary_size() == len(corpus.vocabulary())

    def test_most_frequent_terms(self):
        corpus = make_small_corpus()
        top = corpus.most_frequent_terms(2)
        assert len(top) == 2
        assert top[0][1] >= top[1][1]


class TestFiltering:
    def test_objects_in_rectangle(self):
        corpus = make_small_corpus()
        window = Rectangle(0, 0, 100, 100)
        inside = corpus.objects_in_rectangle(window)
        assert {obj.object_id for obj in inside} == {0}

    def test_objects_with_any_term(self):
        corpus = make_small_corpus()
        matches = corpus.objects_with_any_term(["COFFEE"])
        assert {obj.object_id for obj in matches} == {0, 6}

    def test_terms_in_rectangle(self):
        corpus = make_small_corpus()
        window = Rectangle(0, 0, 200, 200)
        frequencies = corpus.terms_in_rectangle(window)
        assert frequencies["cafe"] == 2
        assert "museum" not in frequencies

    def test_bounding_box(self):
        corpus = make_small_corpus()
        box = corpus.bounding_box()
        assert box.min_x == 50
        assert box.max_y == 260

    def test_bounding_box_empty_raises(self):
        with pytest.raises(DatasetError):
            ObjectCorpus().bounding_box()
