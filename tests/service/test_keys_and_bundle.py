"""Tests for query-key normalization and the shared IndexBundle."""

from __future__ import annotations

import pytest

from repro import LCMSREngine
from repro.core.query import LCMSRQuery
from repro.exceptions import QueryError
from repro.network.subgraph import Rectangle
from repro.service.bundle import IndexBundle
from repro.service.keys import InstanceKey, ResultKey, normalize_keywords
from repro.textindex.relevance import ScoringMode


class TestNormalization:
    def test_keywords_sorted_deduplicated_lowercased(self):
        assert normalize_keywords([" Cafe", "restaurant", "CAFE", ""]) == (
            "cafe",
            "restaurant",
        )

    def test_equivalent_queries_share_result_key(self):
        window = Rectangle(0.0, 0.0, 100.0, 100.0)
        a = ResultKey.create(["cafe", "bar"], 100.0, window, 1, "TGEN",
                             ScoringMode.TEXT_RELEVANCE)
        b = ResultKey.create(["Bar", "cafe", "bar"], 100, Rectangle(0, 0, 100, 100),
                             1, "tgen", ScoringMode.TEXT_RELEVANCE)
        assert a == b
        assert hash(a) == hash(b)

    def test_distinct_parameters_distinct_keys(self):
        base = dict(keywords=["cafe"], delta=100.0, region=None, k=1,
                    algorithm="tgen", scoring_mode=ScoringMode.TEXT_RELEVANCE)
        key = ResultKey.create(**base)
        assert key != ResultKey.create(**{**base, "delta": 200.0})
        assert key != ResultKey.create(**{**base, "algorithm": "greedy"})
        assert key != ResultKey.create(**{**base, "k": 2})
        assert key != ResultKey.create(
            **{**base, "region": Rectangle(0.0, 0.0, 1.0, 1.0)}
        )

    def test_instance_key_ignores_delta_k_and_algorithm(self):
        a = ResultKey.create(["cafe"], 100.0, None, 1, "tgen",
                             ScoringMode.TEXT_RELEVANCE)
        b = ResultKey.create(["cafe"], 900.0, None, 3, "greedy",
                             ScoringMode.TEXT_RELEVANCE)
        assert a.instance_key == b.instance_key
        assert isinstance(a.instance_key, InstanceKey)


class TestIndexBundle:
    def test_build_validates_resolution(self, tiny_ny_dataset):
        with pytest.raises(QueryError):
            IndexBundle.build(tiny_ny_dataset.network, tiny_ny_dataset.corpus,
                              grid_resolution=0)
        with pytest.raises(QueryError):
            IndexBundle.build(tiny_ny_dataset.network, tiny_ny_dataset.corpus,
                              grid_resolution=-3)

    def test_build_populates_every_component(self, tiny_ny_dataset):
        bundle = IndexBundle.build(tiny_ny_dataset.network, tiny_ny_dataset.corpus,
                                   grid_resolution=16)
        assert bundle.network is tiny_ny_dataset.network
        assert bundle.corpus is tiny_ny_dataset.corpus
        assert bundle.mapping.num_mapped == len(tiny_ny_dataset.corpus)
        assert bundle.grid.num_nonempty_cells > 0
        assert bundle.grid_resolution == 16
        assert bundle.build_seconds["total"] > 0
        assert {"mapping", "vsm", "grid", "scorer"} <= set(bundle.build_seconds)
        assert "16x16" in bundle.describe()

    def test_engines_share_one_bundle(self, tiny_ny_dataset):
        engine = LCMSREngine(tiny_ny_dataset.network, tiny_ny_dataset.corpus)
        sibling = LCMSREngine.from_bundle(engine.bundle, default_algorithm="greedy")
        assert sibling.bundle is engine.bundle
        assert sibling.grid is engine.grid
        assert sibling.default_algorithm == "greedy"
        a = engine.query(["restaurant"], delta=1000.0, algorithm="tgen")
        b = sibling.query(["restaurant"], delta=1000.0, algorithm="tgen")
        assert a.region.nodes == b.region.nodes

    def test_from_bundle_rejects_unknown_default(self, tiny_ny_dataset):
        engine = LCMSREngine(tiny_ny_dataset.network, tiny_ny_dataset.corpus)
        with pytest.raises(QueryError):
            LCMSREngine.from_bundle(engine.bundle, default_algorithm="nope")


class TestBundleFreezing:
    def test_build_freezes_network_once(self, tiny_ny_dataset):
        from repro.network.compact import CompactNetwork

        bundle = IndexBundle.build(tiny_ny_dataset.network, tiny_ny_dataset.corpus)
        assert isinstance(bundle.compact, CompactNetwork)
        assert bundle.graph_view() is bundle.compact
        assert bundle.compact.num_nodes == bundle.network.num_nodes
        assert bundle.compact.num_edges == bundle.network.num_edges
        assert "freeze" in bundle.build_seconds
        assert "csr backend" in bundle.describe()

    def test_freeze_opt_out_keeps_dict_backend(self, tiny_ny_dataset):
        bundle = IndexBundle.build(
            tiny_ny_dataset.network, tiny_ny_dataset.corpus, freeze_network=False
        )
        assert bundle.compact is None
        assert bundle.graph_view() is bundle.network
        assert "dict backend" in bundle.describe()

    def test_engine_queries_traverse_the_snapshot(self, tiny_ny_dataset):
        engine = LCMSREngine(tiny_ny_dataset.network, tiny_ny_dataset.corpus)
        assert engine.graph_view is engine.bundle.compact
        instance = engine.build_instance(LCMSRQuery.create(["restaurant"], delta=1000.0))
        # Window-less instances share the frozen snapshot directly.
        assert instance.graph is engine.graph_view

    def test_backends_answer_identically(self, tiny_ny_dataset):
        frozen = LCMSREngine.from_bundle(
            IndexBundle.build(tiny_ny_dataset.network, tiny_ny_dataset.corpus)
        )
        dict_backed = LCMSREngine.from_bundle(
            IndexBundle.build(
                tiny_ny_dataset.network, tiny_ny_dataset.corpus, freeze_network=False
            )
        )
        for algorithm in ("greedy", "tgen", "app"):
            a = frozen.query(["restaurant"], delta=1000.0, algorithm=algorithm)
            b = dict_backed.query(["restaurant"], delta=1000.0, algorithm=algorithm)
            assert a.region.nodes == b.region.nodes
            assert a.region.edges == b.region.edges
            assert a.weight == pytest.approx(b.weight, abs=1e-12)
