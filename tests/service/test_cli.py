"""The ``python -m repro`` CLI: build / info / query / serve-batch round trips.

The commands are exercised in-process through :func:`repro.cli.main` (same code
path as ``python -m repro``, minus the interpreter spawn), asserting both the
exit codes and the observable artifact side effects.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.service.persist import FORMAT_VERSION, read_manifest

BUILD_ARGS = [
    "build", "--dataset", "ny", "--rows", "12", "--cols", "12",
    "--objects", "220", "--clusters", "5", "--seed", "3",
]


@pytest.fixture(scope="module")
def cli_artifact(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "artifact"
    assert main(BUILD_ARGS + ["--out", str(path)]) == 0
    return path


class TestBuild:
    def test_build_writes_a_valid_artifact(self, cli_artifact, capsys):
        manifest = read_manifest(cli_artifact)
        assert manifest.format_version == FORMAT_VERSION
        assert manifest.stats["num_objects"] == 220

    def test_build_refuses_overwrite_without_force(self, cli_artifact, capsys):
        assert main(BUILD_ARGS + ["--out", str(cli_artifact)]) == 2
        assert "already exists" in capsys.readouterr().err
        assert main(BUILD_ARGS + ["--out", str(cli_artifact), "--force"]) == 0


class TestInfo:
    def test_info_prints_manifest_fields(self, cli_artifact, capsys):
        assert main(["info", str(cli_artifact), "--verify"]) == 0
        out = capsys.readouterr().out
        assert f"format version : {FORMAT_VERSION}" in out
        assert "fingerprint" in out
        assert "verified ok" in out

    def test_info_json_is_machine_readable(self, cli_artifact, capsys):
        assert main(["info", str(cli_artifact), "--json"]) == 0
        raw = json.loads(capsys.readouterr().out)
        assert raw["format_version"] == FORMAT_VERSION
        assert set(raw["checksums"]) == {
            "network.npz",
            "scoring.npz",
            "index.pkl",
            "vocabulary.json",
        }

    def test_info_on_missing_artifact_fails_cleanly(self, tmp_path, capsys):
        assert main(["info", str(tmp_path / "missing")]) == 2
        assert "manifest" in capsys.readouterr().err

    def test_info_reports_per_file_sizes(self, cli_artifact, capsys):
        assert main(["info", str(cli_artifact)]) == 0
        out = capsys.readouterr().out
        assert "bytes scoring.npz" in out
        assert "on-disk total" in out and "(uncompressed)" in out


class TestCompressedBuild:
    @pytest.fixture(scope="class")
    def compressed_artifact(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli-compressed") / "artifact"
        assert main(BUILD_ARGS + ["--out", str(path), "--compress", "zlib"]) == 0
        return path

    def test_manifest_records_the_codec(self, compressed_artifact):
        manifest = read_manifest(compressed_artifact)
        assert manifest.compression is not None
        assert manifest.compression["codec"] == "zlib"
        assert set(manifest.compression["raw_bytes"]) == set(manifest.checksums)

    def test_info_reports_codec_and_ratio(self, compressed_artifact, capsys):
        assert main(["info", str(compressed_artifact), "--verify"]) == 0
        out = capsys.readouterr().out
        assert "compression    : zlib level" in out
        assert "x smaller" in out
        assert "verified ok" in out

    def test_compressed_artifact_answers_queries(self, compressed_artifact, capsys):
        assert main([
            "query", str(compressed_artifact), "--keywords", "cafe,restaurant",
            "--delta", "700",
        ]) == 0
        assert "weight" in capsys.readouterr().out

    def test_streamed_build_matches_eager_columns(
        self, cli_artifact, tmp_path, capsys
    ):
        streamed = tmp_path / "streamed"
        assert main(BUILD_ARGS + ["--out", str(streamed), "--stream"]) == 0
        assert "[streamed]" in capsys.readouterr().out
        for name in ("scoring.npz", "network.npz", "vocabulary.json"):
            assert (streamed / name).read_bytes() == (cli_artifact / name).read_bytes()


class TestQuery:
    @pytest.mark.parametrize("algorithm", ["app", "tgen", "greedy"])
    def test_query_every_heuristic(self, cli_artifact, capsys, algorithm):
        assert main([
            "query", str(cli_artifact), "--keywords", "cafe,restaurant",
            "--delta", "700", "--algorithm", algorithm,
        ]) == 0
        out = capsys.readouterr().out
        assert "weight" in out and "length" in out

    def test_query_exact_on_a_small_window(self, cli_artifact, capsys):
        assert main([
            "query", str(cli_artifact), "--keywords", "cafe",
            "--delta", "500", "--region", "100,100,430,430", "--algorithm", "exact",
        ]) == 0
        assert "Exact" in capsys.readouterr().out

    def test_query_topk(self, cli_artifact, capsys):
        assert main([
            "query", str(cli_artifact), "--keywords", "cafe",
            "--delta", "600", "-k", "3",
        ]) == 0
        assert "#1:" in capsys.readouterr().out

    def test_malformed_region_fails_cleanly(self, cli_artifact, capsys):
        assert main([
            "query", str(cli_artifact), "--keywords", "cafe",
            "--delta", "500", "--region", "1,2,3",
        ]) == 2
        assert "region" in capsys.readouterr().err


class TestQueryPolicyFlags:
    def test_anytime_policy_prints_a_regret_bound(self, cli_artifact, capsys):
        assert main([
            "query", str(cli_artifact), "--keywords", "cafe",
            "--delta", "700", "--policy", "anytime(60000)",
        ]) == 0
        out = capsys.readouterr().out
        assert "quality   : anytime (regret bound" in out

    def test_bare_deadline_implies_anytime(self, cli_artifact, capsys):
        assert main([
            "query", str(cli_artifact), "--keywords", "cafe",
            "--delta", "700", "--deadline-ms", "60000",
        ]) == 0
        assert "quality   : anytime" in capsys.readouterr().out

    def test_sampled_policy_prints_a_ci(self, cli_artifact, capsys):
        assert main([
            "query", str(cli_artifact), "--keywords", "cafe",
            "--delta", "700", "--policy", "sampled(0.3)",
        ]) == 0
        assert "quality   : sampled (95% CI ±" in capsys.readouterr().out

    def test_bare_epsilon_implies_sampled(self, cli_artifact, capsys):
        assert main([
            "query", str(cli_artifact), "--keywords", "cafe",
            "--delta", "700", "--epsilon", "0.3",
        ]) == 0
        assert "quality   : sampled" in capsys.readouterr().out

    def test_exact_policy_prints_no_quality_line(self, cli_artifact, capsys):
        assert main([
            "query", str(cli_artifact), "--keywords", "cafe",
            "--delta", "700", "--policy", "exact",
        ]) == 0
        assert "quality" not in capsys.readouterr().out

    def test_policy_applies_to_topk(self, cli_artifact, capsys):
        assert main([
            "query", str(cli_artifact), "--keywords", "cafe",
            "--delta", "600", "-k", "3", "--policy", "sampled(0.3)",
        ]) == 0
        out = capsys.readouterr().out
        assert "#1:" in out and "quality   : sampled" in out

    def test_malformed_policy_fails_cleanly(self, cli_artifact, capsys):
        assert main([
            "query", str(cli_artifact), "--keywords", "cafe",
            "--delta", "700", "--policy", "anytime",
        ]) == 2
        assert "anytime" in capsys.readouterr().err


class TestServeBatch:
    def test_synthesized_batch(self, cli_artifact, capsys):
        assert main([
            "serve-batch", str(cli_artifact), "--synthesize", "6",
            "--delta", "700", "--workers", "2", "--repeat", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "served 6 request(s) x2" in out
        assert "result-cache hit rate" in out

    def test_jsonl_requests(self, cli_artifact, tmp_path, capsys):
        requests = tmp_path / "requests.jsonl"
        requests.write_text(
            json.dumps({"keywords": ["cafe"], "delta": 600.0}) + "\n"
            + json.dumps({"keywords": ["bar"], "delta": 700.0, "algorithm": "greedy"}) + "\n"
        )
        assert main([
            "serve-batch", str(cli_artifact), "--requests", str(requests),
            "--workers", "2",
        ]) == 0
        assert "served 2 request(s)" in capsys.readouterr().out

    def test_default_policy_applies_to_synthesized_requests(
        self, cli_artifact, capsys
    ):
        assert main([
            "serve-batch", str(cli_artifact), "--synthesize", "3",
            "--delta", "700", "--policy", "sampled(0.3)", "--workers", "1",
        ]) == 0
        assert "served 3 request(s)" in capsys.readouterr().out

    def test_jsonl_lines_may_carry_their_own_policy(
        self, cli_artifact, tmp_path, capsys
    ):
        requests = tmp_path / "policies.jsonl"
        requests.write_text(
            json.dumps({"keywords": ["cafe"], "delta": 600.0,
                        "policy": "sampled(0.3)"}) + "\n"
            + json.dumps({"keywords": ["cafe"], "delta": 600.0,
                          "policy": "anytime(60000)"}) + "\n"
            + json.dumps({"keywords": ["cafe"], "delta": 600.0}) + "\n"
        )
        assert main([
            "serve-batch", str(cli_artifact), "--requests", str(requests),
            "--workers", "1",
        ]) == 0
        assert "served 3 request(s)" in capsys.readouterr().out

    def test_malformed_jsonl_policy_fails_cleanly(
        self, cli_artifact, tmp_path, capsys
    ):
        requests = tmp_path / "bad-policy.jsonl"
        requests.write_text(json.dumps(
            {"keywords": ["cafe"], "delta": 600.0, "policy": "wat"}) + "\n")
        assert main([
            "serve-batch", str(cli_artifact), "--requests", str(requests),
        ]) == 2
        assert "line 1" in capsys.readouterr().err

    def test_non_positive_repeat_and_synthesize_fail_cleanly(self, cli_artifact, capsys):
        assert main(["serve-batch", str(cli_artifact), "--repeat", "0"]) == 2
        assert "--repeat" in capsys.readouterr().err
        assert main(["serve-batch", str(cli_artifact), "--synthesize", "0"]) == 2
        assert "--synthesize" in capsys.readouterr().err

    def test_malformed_jsonl_fails_cleanly(self, cli_artifact, tmp_path, capsys):
        requests = tmp_path / "bad.jsonl"
        requests.write_text(json.dumps({"keywords": ["cafe"]}) + "\n")  # no delta
        assert main([
            "serve-batch", str(cli_artifact), "--requests", str(requests),
        ]) == 2
        assert "line 1" in capsys.readouterr().err


class TestSharding:
    @pytest.fixture(scope="class")
    def sharded_artifact(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli-shards") / "artifact"
        assert main(BUILD_ARGS + [
            "--out", str(path), "--shards", "2", "--halo", "500",
        ]) == 0
        return path

    def test_build_shards_writes_verifiable_sub_artifacts(
        self, sharded_artifact, capsys
    ):
        shard_dirs = sorted((sharded_artifact / "shards").glob("shard-*"))
        assert len(shard_dirs) == 2
        assert (sharded_artifact / "shards" / "shards.json").is_file()
        for shard_dir in shard_dirs:
            assert main(["info", str(shard_dir), "--verify"]) == 0
            out = capsys.readouterr().out
            assert "verified ok" in out
            assert "shard" in out and "of 2" in out

    def test_serve_batch_processes_uses_the_sharded_gateway(
        self, sharded_artifact, capsys
    ):
        assert main([
            "serve-batch", str(sharded_artifact), "--synthesize", "4",
            "--delta", "600", "--processes", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "served 4 request(s)" in out
        assert "2 process(es)" in out and "2 shard(s)" in out

    def test_non_positive_shards_fails_cleanly(self, tmp_path, capsys):
        assert main(BUILD_ARGS + [
            "--out", str(tmp_path / "bad"), "--shards", "0",
        ]) == 2
        assert "--shards" in capsys.readouterr().err


class TestMutateAndCompact:
    @pytest.fixture()
    def mutable_artifact(self, tmp_path):
        path = tmp_path / "mutable"
        assert main(BUILD_ARGS + ["--out", str(path)]) == 0
        return path

    def test_mutate_records_ops_in_the_delta_log(self, mutable_artifact, capsys):
        from repro.service.generations import read_delta_log

        assert main([
            "mutate", str(mutable_artifact),
            "--add", '{"id": 90001, "x": 300.0, "y": 300.0, '
                     '"keywords": ["cafe", "bar"], "rating": 2.5}',
            "--set-rating", "3=4.5",
        ]) == 0
        out = capsys.readouterr().out
        assert "recorded 2 mutation(s)" in out
        ops = read_delta_log(mutable_artifact)
        assert [op["op"] for op in ops] == ["add", "rate"]
        # A second mutate call appends.
        assert main(["mutate", str(mutable_artifact), "--remove", "3"]) == 0
        assert len(read_delta_log(mutable_artifact)) == 3

    def test_mutate_validates_before_writing(self, mutable_artifact, capsys):
        from repro.service.generations import read_delta_log

        assert main([
            "mutate", str(mutable_artifact), "--remove", "999999",
        ]) == 2
        assert "unknown" in capsys.readouterr().err
        assert read_delta_log(mutable_artifact) == []

    def test_mutate_without_ops_fails_cleanly(self, mutable_artifact, capsys):
        assert main(["mutate", str(mutable_artifact)]) == 2
        assert "no mutations given" in capsys.readouterr().err

    def test_mutate_from_ops_file(self, mutable_artifact, tmp_path, capsys):
        from repro.service.generations import read_delta_log

        ops_file = tmp_path / "ops.json"
        ops_file.write_text(json.dumps({"ops": [
            {"op": "rate", "id": 5, "rating": 3.5},
            {"op": "remove", "id": 7},
        ]}), encoding="utf-8")
        assert main(["mutate", str(mutable_artifact), "--ops", str(ops_file)]) == 0
        assert len(read_delta_log(mutable_artifact)) == 2

    def test_compact_writes_generation_and_flips_current(
        self, mutable_artifact, capsys
    ):
        from repro.service.generations import read_delta_log

        assert main(["mutate", str(mutable_artifact), "--set-rating", "3=4.5"]) == 0
        capsys.readouterr()
        assert main(["compact", str(mutable_artifact)]) == 0
        out = capsys.readouterr().out
        assert "compacted 1 mutation(s) into gen-0001" in out
        current = (mutable_artifact / "CURRENT").read_text(encoding="utf-8").strip()
        assert current == "gen-0001"
        assert read_delta_log(mutable_artifact) == []
        # The new generation is a complete, verifiable artifact...
        assert main(["info", str(mutable_artifact / "gen-0001"), "--verify"]) == 0
        assert "verified ok" in capsys.readouterr().out
        # ...and queries against the root serve it transparently.
        assert main([
            "query", str(mutable_artifact),
            "--keywords", "cafe", "--delta", "600",
        ]) == 0

    def test_compact_without_pending_is_a_noop(self, mutable_artifact, capsys):
        assert main(["compact", str(mutable_artifact)]) == 0
        assert "nothing to compact" in capsys.readouterr().out
