"""Tests for the thread-safe LRU cache and its accounting."""

from __future__ import annotations

import threading

import pytest

from repro.service.cache import LRUCache


class TestBasics:
    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(max_size=-1)

    def test_get_put_roundtrip(self):
        cache = LRUCache(max_size=4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert len(cache) == 1

    def test_zero_capacity_disables_caching(self):
        cache = LRUCache(max_size=0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_clear_keeps_counters(self):
        cache = LRUCache(max_size=4)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        stats = cache.stats()
        assert len(cache) == 0
        assert stats.hits == 1


class TestEviction:
    def test_lru_entry_evicted_first(self):
        cache = LRUCache(max_size=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # "a" is now most recently used
        cache.put("c", 3)       # evicts "b"
        assert cache.get("a") == 1
        assert cache.get("b") is None
        assert cache.get("c") == 3
        assert cache.stats().evictions == 1

    def test_refresh_does_not_grow(self):
        cache = LRUCache(max_size=2)
        cache.put("a", 1)
        cache.put("a", 2)
        assert len(cache) == 1
        assert cache.get("a") == 2


class TestAccounting:
    def test_hit_miss_counters(self):
        cache = LRUCache(max_size=4)
        cache.put("a", 1)
        cache.get("a")
        cache.get("a")
        cache.get("missing")
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.lookups) == (2, 1, 3)
        assert stats.hit_rate == pytest.approx(2 / 3)

    def test_hit_rate_zero_without_lookups(self):
        assert LRUCache(max_size=4).stats().hit_rate == 0.0


class TestConcurrency:
    def test_parallel_readers_and_writers(self):
        cache = LRUCache(max_size=32)
        errors = []

        def worker(worker_id: int) -> None:
            try:
                for i in range(300):
                    key = (worker_id * 7 + i) % 48
                    cache.put(key, key)
                    value = cache.get(key % 16)
                    assert value is None or value == key % 16
            except Exception as exc:  # pragma: no cover - only on failure
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(w,)) for w in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        stats = cache.stats()
        assert stats.size <= 32
        assert stats.lookups == 8 * 300
