"""ServiceStats merging, latency percentiles and the StatsCollector's atomicity."""

from __future__ import annotations

import pickle
import threading

import pytest

from repro.service.cache import CacheStats
from repro.service.keys import ResultKey
from repro.service.stats import (
    LATENCY_NUM_BUCKETS,
    LatencyHistogram,
    QueryTiming,
    ServiceStats,
    StatsCollector,
    StatTotals,
)
from repro.textindex.relevance import ScoringMode


def _timing(index: int, result_hit: bool = False, instance_hit: bool = False,
            total_seconds: float = 1.0):
    return QueryTiming(
        key=ResultKey.create((f"kw{index}",), 100.0 + index, None, 1, "tgen",
                             ScoringMode.TEXT_RELEVANCE),
        algorithm="tgen",
        result_cache_hit=result_hit,
        instance_cache_hit=instance_hit,
        build_seconds=0.25,
        solve_seconds=0.5,
        total_seconds=total_seconds,
    )


def _cache(hits: int, misses: int) -> CacheStats:
    return CacheStats(hits=hits, misses=misses, evictions=0, size=0, max_size=8)


def test_totals_match_timing_derivation():
    timings = [_timing(0), _timing(1, result_hit=True), _timing(2, instance_hit=True)]
    totals = StatTotals.from_timings(timings)
    assert totals.queries == 3
    assert totals.result_hits == 1
    assert totals.instance_hits == 1
    assert totals.total_seconds == 3.0
    # A snapshot without explicit totals derives the identical values.
    stats = ServiceStats(timings=timings, result_cache=_cache(1, 2),
                         instance_cache=_cache(1, 1))
    assert stats.queries == 3
    assert stats.result_hit_rate == 1 / 3
    assert stats.mean_latency_seconds == 1.0


def test_merge_sums_counters_and_concatenates_timings():
    part_a = ServiceStats(timings=[_timing(0), _timing(1, result_hit=True)],
                          result_cache=_cache(1, 1), instance_cache=_cache(0, 1))
    part_b = ServiceStats(timings=[_timing(2)],
                          result_cache=_cache(0, 1), instance_cache=_cache(1, 0))
    merged = ServiceStats.merge([part_a, part_b])
    assert merged.queries == 3
    assert merged.result_hits == 1
    assert len(merged.timings) == 3
    assert merged.result_cache.hits == 1
    assert merged.result_cache.misses == 2
    assert merged.instance_cache.hits == 1
    assert merged.total_seconds == 3.0
    # Merging nothing is a well-defined empty snapshot.
    empty = ServiceStats.merge([])
    assert empty.queries == 0
    assert empty.mean_latency_seconds == 0.0
    assert empty.result_hit_rate == 0.0


def test_merge_is_associative_over_worker_snapshots():
    parts = [
        ServiceStats(timings=[_timing(i)], result_cache=_cache(i, 1),
                     instance_cache=_cache(0, i))
        for i in range(4)
    ]
    all_at_once = ServiceStats.merge(parts)
    pairwise = ServiceStats.merge(
        [ServiceStats.merge(parts[:2]), ServiceStats.merge(parts[2:])]
    )
    assert all_at_once.queries == pairwise.queries
    assert all_at_once.result_cache == pairwise.result_cache
    assert all_at_once.totals == pairwise.totals
    assert all_at_once.timings == pairwise.timings


def test_stats_are_picklable():
    """Snapshots travel from worker processes to the gateway."""
    stats = ServiceStats(timings=[_timing(0)], result_cache=_cache(1, 0),
                         instance_cache=_cache(0, 1),
                         totals=StatTotals.from_timings([_timing(0)]))
    restored = pickle.loads(pickle.dumps(stats))
    assert restored.queries == 1
    assert restored.timings == stats.timings
    assert restored.totals == stats.totals


class TestLatencyHistogram:
    def test_empty_tuple_is_the_additive_identity(self):
        empty = LatencyHistogram()
        one = LatencyHistogram.of(0.01)
        assert (empty + one) == one
        assert (one + empty) == one
        assert empty.total == 0
        assert empty.percentile(50.0) == 0.0

    def test_merge_is_associative_and_commutative(self):
        a = LatencyHistogram.of(0.001)
        b = LatencyHistogram.of(0.1)
        c = LatencyHistogram.of(10.0)
        assert ((a + b) + c) == (a + (b + c))
        assert (a + b) == (b + a)
        assert (a + b + c).total == 3

    def test_bucket_index_clamps_both_ends(self):
        assert LatencyHistogram.bucket_index(0.0) == 0
        assert LatencyHistogram.bucket_index(1e-9) == 0
        assert LatencyHistogram.bucket_index(1e9) == LATENCY_NUM_BUCKETS - 1

    def test_percentile_is_within_bucket_resolution(self):
        """The reported percentile stays within ±6% of the true sample."""
        samples = [0.0005 * (i + 1) for i in range(200)]  # 0.5 ms … 100 ms
        histogram = LatencyHistogram()
        for s in samples:
            histogram = histogram + LatencyHistogram.of(s)
        assert histogram.total == len(samples)
        for q in (50.0, 95.0, 99.0):
            truth = sorted(samples)[max(0, int(q / 100.0 * len(samples)) - 1)]
            assert histogram.percentile(q) == pytest.approx(truth, rel=0.07)

    def test_percentile_rejects_out_of_range(self):
        histogram = LatencyHistogram.of(0.01)
        for bad in (-1.0, 100.5):
            with pytest.raises(ValueError):
                histogram.percentile(bad)

    def test_snapshot_percentile_properties(self):
        # 98 fast queries, one slow, one very slow: p50 ≈ 1 ms, p99 ≈ 2 s.
        timings = [_timing(i, total_seconds=0.001) for i in range(98)]
        timings.append(_timing(98, total_seconds=2.0))
        timings.append(_timing(99, total_seconds=20.0))
        stats = ServiceStats(timings=timings, result_cache=_cache(0, 0),
                             instance_cache=_cache(0, 0))
        assert stats.p50_latency_seconds == pytest.approx(0.001, rel=0.07)
        assert stats.p95_latency_seconds == pytest.approx(0.001, rel=0.07)
        assert stats.p99_latency_seconds == pytest.approx(2.0, rel=0.07)
        assert stats.latency_percentile(100.0) == pytest.approx(20.0, rel=0.07)

    def test_merged_snapshots_report_cross_worker_percentiles(self):
        """Percentiles of merged worker snapshots == percentiles of the union."""
        worker_a = ServiceStats(
            timings=[_timing(i, total_seconds=0.001) for i in range(50)],
            result_cache=_cache(0, 0), instance_cache=_cache(0, 0))
        worker_b = ServiceStats(
            timings=[_timing(i, total_seconds=1.0) for i in range(50)],
            result_cache=_cache(0, 0), instance_cache=_cache(0, 0))
        merged = ServiceStats.merge([worker_a, worker_b])
        union = ServiceStats(
            timings=worker_a.timings + worker_b.timings,
            result_cache=_cache(0, 0), instance_cache=_cache(0, 0))
        for q in (50.0, 90.0, 95.0, 99.0):
            assert merged.latency_percentile(q) == union.latency_percentile(q)
        assert merged.totals.latency.total == 100

    def test_histograms_survive_pickling(self):
        totals = StatTotals.from_timings(
            [_timing(i, total_seconds=0.01 * (i + 1)) for i in range(5)])
        restored = pickle.loads(pickle.dumps(totals))
        assert restored.latency == totals.latency
        assert restored.latency.percentile(50.0) == totals.latency.percentile(50.0)

    def test_reporting_renders_percentile_rows(self):
        from repro.evaluation import format_service_stats

        stats = ServiceStats(timings=[_timing(0, total_seconds=0.02)],
                             result_cache=_cache(0, 1),
                             instance_cache=_cache(0, 1))
        summary = format_service_stats(stats)
        assert "p50 latency (s)" in summary
        assert "p95 latency (s)" in summary
        assert "p99 latency (s)" in summary

    def test_collector_hammer_histogram_counts_every_query(self):
        """8 threads × 250 queries: the histogram never loses a sample."""
        collector = StatsCollector()
        threads_n, per_thread = 8, 250
        barrier = threading.Barrier(threads_n)
        # Each thread records a disjoint latency decade so the final histogram
        # composition is fully predictable.
        latencies = [10.0 ** (-4 + worker % 4) for worker in range(threads_n)]

        def pound(worker: int) -> None:
            barrier.wait()
            for i in range(per_thread):
                collector.record(
                    _timing(worker * per_thread + i,
                            total_seconds=latencies[worker]))

        threads = [threading.Thread(target=pound, args=(w,))
                   for w in range(threads_n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        snapshot = collector.snapshot(result_cache=_cache(0, 0),
                                      instance_cache=_cache(0, 0))
        expected = threads_n * per_thread
        assert snapshot.totals.latency.total == expected
        assert snapshot.totals.latency == StatTotals.from_timings(
            snapshot.timings).latency
        # Two threads per decade -> p50 sits in the second decade (1 ms).
        assert snapshot.latency_percentile(50.0) == pytest.approx(1e-3, rel=0.07)
        assert snapshot.latency_percentile(99.0) == pytest.approx(0.1, rel=0.07)


def test_collector_hammer_no_dropped_counts():
    """Concurrent record() calls must never lose a count (read-modify-write race)."""
    collector = StatsCollector()
    threads_n, per_thread = 8, 200
    barrier = threading.Barrier(threads_n)

    def pound(worker: int) -> None:
        barrier.wait()
        for i in range(per_thread):
            collector.record(_timing(worker * per_thread + i,
                                     result_hit=(i % 2 == 0),
                                     instance_hit=(i % 4 == 0)))

    threads = [threading.Thread(target=pound, args=(w,)) for w in range(threads_n)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    snapshot = collector.snapshot(result_cache=_cache(0, 0), instance_cache=_cache(0, 0))
    expected = threads_n * per_thread
    assert snapshot.queries == expected
    assert len(snapshot.timings) == expected
    assert snapshot.result_hits == threads_n * (per_thread // 2)
    assert snapshot.instance_hits == threads_n * (per_thread // 4)
    assert snapshot.totals == StatTotals.from_timings(snapshot.timings)
    # Exact float equality: totals are folded once per record, in order, under
    # the lock — identical accumulation to the sequential derivation above.
    assert snapshot.total_seconds == float(expected)


def test_collector_snapshot_is_consistent_under_reset():
    collector = StatsCollector()
    collector.record_many([_timing(i) for i in range(5)])
    snapshot = collector.snapshot(result_cache=_cache(0, 0), instance_cache=_cache(0, 0))
    assert snapshot.queries == 5
    collector.reset()
    empty = collector.snapshot(result_cache=_cache(0, 0), instance_cache=_cache(0, 0))
    assert empty.queries == 0
    assert empty.timings == []
    # The first snapshot froze its own copy: resetting did not mutate it.
    assert snapshot.queries == 5
