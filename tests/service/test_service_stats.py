"""ServiceStats merging and the StatsCollector's atomicity guarantees."""

from __future__ import annotations

import pickle
import threading

from repro.service.cache import CacheStats
from repro.service.keys import ResultKey
from repro.service.stats import QueryTiming, ServiceStats, StatsCollector, StatTotals
from repro.textindex.relevance import ScoringMode


def _timing(index: int, result_hit: bool = False, instance_hit: bool = False):
    return QueryTiming(
        key=ResultKey.create((f"kw{index}",), 100.0 + index, None, 1, "tgen",
                             ScoringMode.TEXT_RELEVANCE),
        algorithm="tgen",
        result_cache_hit=result_hit,
        instance_cache_hit=instance_hit,
        build_seconds=0.25,
        solve_seconds=0.5,
        total_seconds=1.0,
    )


def _cache(hits: int, misses: int) -> CacheStats:
    return CacheStats(hits=hits, misses=misses, evictions=0, size=0, max_size=8)


def test_totals_match_timing_derivation():
    timings = [_timing(0), _timing(1, result_hit=True), _timing(2, instance_hit=True)]
    totals = StatTotals.from_timings(timings)
    assert totals.queries == 3
    assert totals.result_hits == 1
    assert totals.instance_hits == 1
    assert totals.total_seconds == 3.0
    # A snapshot without explicit totals derives the identical values.
    stats = ServiceStats(timings=timings, result_cache=_cache(1, 2),
                         instance_cache=_cache(1, 1))
    assert stats.queries == 3
    assert stats.result_hit_rate == 1 / 3
    assert stats.mean_latency_seconds == 1.0


def test_merge_sums_counters_and_concatenates_timings():
    part_a = ServiceStats(timings=[_timing(0), _timing(1, result_hit=True)],
                          result_cache=_cache(1, 1), instance_cache=_cache(0, 1))
    part_b = ServiceStats(timings=[_timing(2)],
                          result_cache=_cache(0, 1), instance_cache=_cache(1, 0))
    merged = ServiceStats.merge([part_a, part_b])
    assert merged.queries == 3
    assert merged.result_hits == 1
    assert len(merged.timings) == 3
    assert merged.result_cache.hits == 1
    assert merged.result_cache.misses == 2
    assert merged.instance_cache.hits == 1
    assert merged.total_seconds == 3.0
    # Merging nothing is a well-defined empty snapshot.
    empty = ServiceStats.merge([])
    assert empty.queries == 0
    assert empty.mean_latency_seconds == 0.0
    assert empty.result_hit_rate == 0.0


def test_merge_is_associative_over_worker_snapshots():
    parts = [
        ServiceStats(timings=[_timing(i)], result_cache=_cache(i, 1),
                     instance_cache=_cache(0, i))
        for i in range(4)
    ]
    all_at_once = ServiceStats.merge(parts)
    pairwise = ServiceStats.merge(
        [ServiceStats.merge(parts[:2]), ServiceStats.merge(parts[2:])]
    )
    assert all_at_once.queries == pairwise.queries
    assert all_at_once.result_cache == pairwise.result_cache
    assert all_at_once.totals == pairwise.totals
    assert all_at_once.timings == pairwise.timings


def test_stats_are_picklable():
    """Snapshots travel from worker processes to the gateway."""
    stats = ServiceStats(timings=[_timing(0)], result_cache=_cache(1, 0),
                         instance_cache=_cache(0, 1),
                         totals=StatTotals.from_timings([_timing(0)]))
    restored = pickle.loads(pickle.dumps(stats))
    assert restored.queries == 1
    assert restored.timings == stats.timings
    assert restored.totals == stats.totals


def test_collector_hammer_no_dropped_counts():
    """Concurrent record() calls must never lose a count (read-modify-write race)."""
    collector = StatsCollector()
    threads_n, per_thread = 8, 200
    barrier = threading.Barrier(threads_n)

    def pound(worker: int) -> None:
        barrier.wait()
        for i in range(per_thread):
            collector.record(_timing(worker * per_thread + i,
                                     result_hit=(i % 2 == 0),
                                     instance_hit=(i % 4 == 0)))

    threads = [threading.Thread(target=pound, args=(w,)) for w in range(threads_n)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    snapshot = collector.snapshot(result_cache=_cache(0, 0), instance_cache=_cache(0, 0))
    expected = threads_n * per_thread
    assert snapshot.queries == expected
    assert len(snapshot.timings) == expected
    assert snapshot.result_hits == threads_n * (per_thread // 2)
    assert snapshot.instance_hits == threads_n * (per_thread // 4)
    assert snapshot.totals == StatTotals.from_timings(snapshot.timings)
    # Exact float equality: totals are folded once per record, in order, under
    # the lock — identical accumulation to the sequential derivation above.
    assert snapshot.total_seconds == float(expected)


def test_collector_snapshot_is_consistent_under_reset():
    collector = StatsCollector()
    collector.record_many([_timing(i) for i in range(5)])
    snapshot = collector.snapshot(result_cache=_cache(0, 0), instance_cache=_cache(0, 0))
    assert snapshot.queries == 5
    collector.reset()
    empty = collector.snapshot(result_cache=_cache(0, 0), instance_cache=_cache(0, 0))
    assert empty.queries == 0
    assert empty.timings == []
    # The first snapshot froze its own copy: resetting did not mutate it.
    assert snapshot.queries == 5
