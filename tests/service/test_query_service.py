"""Tests for the batched concurrent QueryService.

The load-bearing guarantees: batch execution returns exactly what a sequential
loop over the engine returns, the cache accounting adds up, and concurrent
``submit_many`` calls are safe.
"""

from __future__ import annotations

import threading

import pytest

from repro import LCMSREngine, QueryRequest, QueryService, Rectangle
from repro.core.dense import DenseInstance
from repro.core.result import TopKResult
from repro.evaluation import format_query_timings, format_service_stats
from repro.exceptions import QueryError


@pytest.fixture(scope="module")
def engine(tiny_ny_dataset):
    return LCMSREngine(tiny_ny_dataset.network, tiny_ny_dataset.corpus)


@pytest.fixture()
def service(engine):
    with QueryService(engine, max_workers=4) as svc:
        yield svc


def _mixed_requests(dataset):
    extent = dataset.extent
    window = Rectangle(extent.min_x, extent.min_y,
                       extent.min_x + 1500.0, extent.min_y + 1500.0)
    return [
        QueryRequest.create(["restaurant", "cafe"], 1200.0, algorithm="tgen"),
        QueryRequest.create(["cafe"], 900.0, algorithm="greedy"),
        QueryRequest.create(["restaurant"], 800.0, region=window, algorithm="greedy"),
        QueryRequest.create(["bar"], 1000.0, algorithm="app"),
        QueryRequest.create(["restaurant", "cafe"], 600.0, algorithm="tgen"),
    ]


class TestBatchSemantics:
    def test_batch_identical_to_sequential_loop(self, engine, service, tiny_ny_dataset):
        requests = _mixed_requests(tiny_ny_dataset)
        batch = service.run_batch(requests)
        sequential = [
            engine.query(r.keywords, r.delta, region=r.region, algorithm=r.algorithm)
            for r in requests
        ]
        assert len(batch) == len(sequential)
        for got, expected in zip(batch, sequential):
            assert got.algorithm == expected.algorithm
            assert got.region.nodes == expected.region.nodes
            assert got.weight == pytest.approx(expected.weight)
            assert got.length == pytest.approx(expected.length)

    def test_results_preserve_request_order(self, service, tiny_ny_dataset):
        requests = _mixed_requests(tiny_ny_dataset)
        results = service.run_batch(requests)
        expected_algorithms = [r.algorithm for r in requests]
        assert [r.algorithm.lower() for r in results] == expected_algorithms

    def test_topk_requests_route_to_topk(self, service):
        [result] = service.run_batch(
            [QueryRequest.create(["restaurant"], 1000.0, k=3, algorithm="tgen")]
        )
        assert isinstance(result, TopKResult)
        assert 1 <= len(result) <= 3

    def test_submit_returns_future(self, service):
        future = service.submit(QueryRequest.create(["cafe"], 700.0, algorithm="greedy"))
        result = future.result(timeout=30)
        assert result.weight >= 0.0

    def test_bad_request_raises_from_result(self, service):
        futures = service.submit_many(
            [QueryRequest.create(["cafe"], 700.0, algorithm="no-such-solver")]
        )
        with pytest.raises(QueryError):
            futures[0].result(timeout=30)

    def test_empty_keywords_rejected(self, service):
        with pytest.raises(QueryError):
            service.execute(QueryRequest.create([], 700.0))

    def test_closed_service_rejects_submissions(self, engine):
        service = QueryService(engine, max_workers=1)
        service.close()
        with pytest.raises(QueryError):
            service.submit(QueryRequest.create(["cafe"], 700.0))


class TestCaching:
    def test_repeat_query_hits_result_cache(self, engine):
        with QueryService(engine, max_workers=1) as service:
            request = QueryRequest.create(["restaurant"], 1000.0, algorithm="tgen")
            first = service.execute(request)
            second = service.execute(request)
            assert second is first  # the exact cached object
            stats = service.stats()
            assert stats.queries == 2
            assert stats.result_hits == 1
            assert stats.timings[0].result_cache_hit is False
            assert stats.timings[1].result_cache_hit is True

    def test_normalized_variants_share_cache_entry(self, engine):
        with QueryService(engine, max_workers=1) as service:
            a = service.execute(QueryRequest.create(["cafe", "Restaurant"], 1000.0))
            b = service.execute(QueryRequest.create(["restaurant", "cafe", "cafe"], 1000.0))
            assert b is a
            assert service.stats().result_hits == 1

    def test_delta_sweep_reuses_instance(self, engine):
        with QueryService(engine, max_workers=1) as service:
            for delta in (600.0, 800.0, 1000.0):
                service.execute(QueryRequest.create(["restaurant"], delta))
            stats = service.stats()
            assert stats.queries == 3
            assert stats.result_hits == 0          # three distinct answers
            assert stats.instance_hits == 2        # but one instance build
            assert stats.instance_cache.hits == 2
            assert stats.instance_cache.misses == 1

    def test_instance_reuse_changes_no_answers(self, engine):
        deltas = (600.0, 800.0, 1000.0)
        with QueryService(engine, max_workers=1) as service:
            cached = [
                service.execute(QueryRequest.create(["restaurant"], d, algorithm="tgen"))
                for d in deltas
            ]
        fresh = [engine.query(["restaurant"], d, algorithm="tgen") for d in deltas]
        for got, expected in zip(cached, fresh):
            assert got.region.nodes == expected.region.nodes

    def test_caches_can_be_disabled(self, engine):
        with QueryService(engine, max_workers=1, result_cache_size=0,
                          instance_cache_size=0) as service:
            request = QueryRequest.create(["restaurant"], 1000.0)
            service.execute(request)
            service.execute(request)
            stats = service.stats()
            assert stats.result_hits == 0
            assert stats.instance_hits == 0

    def test_clear_caches_forces_recompute(self, engine):
        with QueryService(engine, max_workers=1) as service:
            request = QueryRequest.create(["restaurant"], 1000.0)
            service.execute(request)
            service.clear_caches()
            service.execute(request)
            assert service.stats().result_hits == 0

    def test_accounting_adds_up(self, engine, tiny_ny_dataset):
        with QueryService(engine, max_workers=4) as service:
            requests = _mixed_requests(tiny_ny_dataset) * 3
            service.run_batch(requests)
            stats = service.stats()
            assert stats.queries == len(requests)
            misses = stats.queries - stats.result_hits
            assert stats.result_cache.lookups == stats.queries
            assert stats.result_cache.hits == stats.result_hits
            assert misses >= len(_mixed_requests(tiny_ny_dataset))
            assert stats.total_seconds >= stats.total_solve_seconds

    def test_configure_solver_invalidates_cached_results(self, tiny_ny_dataset):
        from repro.core.greedy import GreedySolver

        engine = LCMSREngine(tiny_ny_dataset.network, tiny_ny_dataset.corpus)
        with QueryService(engine, max_workers=1) as service:
            request = QueryRequest.create(["restaurant"], 1000.0, algorithm="greedy")
            first = service.execute(request)
            engine.configure_solver("greedy", GreedySolver(mu=0.9))
            second = service.execute(request)
            assert second is not first  # recomputed by the replaced solver
            assert service.stats().result_hits == 0

    def test_result_hit_does_not_count_as_instance_hit(self, engine):
        with QueryService(engine, max_workers=1) as service:
            request = QueryRequest.create(["restaurant"], 1000.0)
            service.execute(request)
            service.execute(request)
            stats = service.stats()
            assert stats.result_hits == 1
            assert stats.instance_hits == 0
            assert stats.instance_cache.lookups == 1  # only the first query probed

    def test_windowless_instances_share_engine_graph(self, engine):
        with QueryService(engine, max_workers=1) as service:
            service.execute(QueryRequest.create(["restaurant"], 1000.0))
            service.execute(QueryRequest.create(["cafe"], 1000.0))
            # Two distinct window-less keyword sets must not pin two full
            # network copies: every cached entry shares the engine's frozen
            # graph view (the bundle's CSR snapshot). On the pipeline hot path
            # the cache stores DenseInstance substrates, whose graph view is
            # the window snapshot itself.
            cache = service._instance_cache
            assert len(cache) == 2
            for key in cache.keys():
                entry = cache.get(key)
                graph = (
                    entry.graph_view() if isinstance(entry, DenseInstance)
                    else entry.graph
                )
                assert graph is engine.graph_view

    def test_reporting_renders(self, engine):
        with QueryService(engine, max_workers=1) as service:
            service.execute(QueryRequest.create(["restaurant"], 1000.0))
            service.execute(QueryRequest.create(["restaurant"], 1000.0))
            summary = format_service_stats(service.stats())
            assert "result-cache hit rate" in summary
            timings = format_query_timings(service.stats())
            assert "result-hit" in timings
            # limit=0 means "no rows", not "all rows" (timings[-0:] pitfall).
            assert "result-hit" not in format_query_timings(service.stats(), limit=0)
            assert "result-hit" in format_query_timings(service.stats(), limit=1)


class TestConcurrency:
    def test_concurrent_submit_many_smoke(self, engine, tiny_ny_dataset):
        base = _mixed_requests(tiny_ny_dataset)
        expected = {
            id(r): engine.query(r.keywords, r.delta, region=r.region,
                                algorithm=r.algorithm).region.nodes
            for r in base
        }
        errors = []
        with QueryService(engine, max_workers=4) as service:

            def submitter() -> None:
                try:
                    for result, request in zip(service.run_batch(base), base):
                        assert result.region.nodes == expected[id(request)]
                except Exception as exc:  # pragma: no cover - only on failure
                    errors.append(exc)

            threads = [threading.Thread(target=submitter) for _ in range(6)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            stats = service.stats()
            assert stats.queries == 6 * len(base)
            # After the warm-up, the steady state is all result-cache hits: at
            # most one miss per distinct request plus bounded duplicated work
            # from racing first-round workers.
            assert stats.result_hits >= stats.queries - len(base) * 4
