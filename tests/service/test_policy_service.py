"""Per-query service policies through the caches, the gateway and shedding.

Four contracts under test:

* **Cache isolation** — an exact answer is never served from a sampled cache
  entry and vice versa; distinct epsilons and seeds are distinct entries. The
  explicit ``QueryPolicy.exact()`` maps onto the legacy (policy-free) key, so
  pre-policy callers and exact-policy callers share one entry.
* **Instance sharing** — anytime requests reuse the exact instance build (the
  budget attaches at solve time), sampled requests build their own.
* **Gateway transport** — a ``QueryRequest`` carrying a policy pickles across
  the process boundary and the worker honours it (quality stats come back).
* **Load shedding** — above the in-flight threshold the gateway downgrades
  exact requests to the configured degraded policy, counts them in ``shed``
  and never rewrites a request that already chose its own approximation.
"""

from __future__ import annotations

import pickle

import pytest

from repro import LCMSREngine, QueryPolicy, QueryRequest, QueryService
from repro.core.anytime import ResultQuality
from repro.exceptions import QueryError
from repro.service.bundle import IndexBundle
from repro.service.sharding import ShardedQueryService, build_shards


@pytest.fixture(scope="module")
def engine(tiny_ny_dataset):
    return LCMSREngine(tiny_ny_dataset.network, tiny_ny_dataset.corpus)


class TestCacheIsolation:
    def test_exact_never_served_from_a_sampled_entry(self, engine):
        with QueryService(engine, max_workers=1) as service:
            sampled = service.execute(QueryRequest.create(
                ["restaurant"], 1000.0, policy=QueryPolicy.sampled(0.3)))
            exact = service.execute(QueryRequest.create(["restaurant"], 1000.0))
            assert exact is not sampled
            assert service.stats().result_hits == 0
            assert "quality_ci" not in exact.stats

    def test_sampled_never_served_from_an_exact_entry(self, engine):
        with QueryService(engine, max_workers=1) as service:
            exact = service.execute(QueryRequest.create(["restaurant"], 1000.0))
            sampled = service.execute(QueryRequest.create(
                ["restaurant"], 1000.0, policy=QueryPolicy.sampled(0.3)))
            assert sampled is not exact
            assert service.stats().result_hits == 0
            # The sampled entry carries its CI annotation, also when it is
            # later served straight from the cache.
            assert "quality_ci" in sampled.stats
            again = service.execute(QueryRequest.create(
                ["restaurant"], 1000.0, policy=QueryPolicy.sampled(0.3)))
            assert again is sampled
            assert "quality_ci" in again.stats

    def test_each_policy_hits_its_own_entry(self, engine):
        with QueryService(engine, max_workers=1) as service:
            requests = [
                QueryRequest.create(["restaurant"], 1000.0),
                QueryRequest.create(["restaurant"], 1000.0,
                                    policy=QueryPolicy.sampled(0.3)),
                QueryRequest.create(["restaurant"], 1000.0,
                                    policy=QueryPolicy.anytime(60_000.0)),
            ]
            first = [service.execute(r) for r in requests]
            second = [service.execute(r) for r in requests]
            for a, b in zip(first, second):
                assert b is a
            stats = service.stats()
            assert stats.queries == 6
            assert stats.result_hits == 3

    def test_distinct_epsilons_and_seeds_are_distinct_entries(self, engine):
        with QueryService(engine, max_workers=1) as service:
            variants = [
                QueryPolicy.sampled(0.3),
                QueryPolicy.sampled(0.4),
                QueryPolicy.sampled(0.3, seed=1),
            ]
            for policy in variants:
                service.execute(QueryRequest.create(["restaurant"], 1000.0,
                                                    policy=policy))
            assert service.stats().result_hits == 0

    def test_explicit_exact_policy_is_the_legacy_entry(self, engine):
        with QueryService(engine, max_workers=1) as service:
            legacy = service.execute(QueryRequest.create(["restaurant"], 1000.0))
            explicit = service.execute(QueryRequest.create(
                ["restaurant"], 1000.0, policy=QueryPolicy.exact()))
            assert explicit is legacy
            assert service.stats().result_hits == 1

    def test_anytime_reuses_the_exact_instance_build(self, engine):
        with QueryService(engine, max_workers=1) as service:
            service.execute(QueryRequest.create(["restaurant"], 1000.0))
            service.execute(QueryRequest.create(
                ["restaurant"], 1000.0, policy=QueryPolicy.anytime(60_000.0)))
            stats = service.stats()
            # Distinct result entries, one shared instance build.
            assert stats.result_hits == 0
            assert stats.instance_hits == 1

    def test_sampled_builds_its_own_instance(self, engine):
        with QueryService(engine, max_workers=1) as service:
            service.execute(QueryRequest.create(["restaurant"], 1000.0))
            service.execute(QueryRequest.create(
                ["restaurant"], 1000.0, policy=QueryPolicy.sampled(0.3)))
            assert service.stats().instance_hits == 0


class TestPolicyResults:
    def test_exact_policy_answers_byte_identical_to_the_engine(self, engine):
        with QueryService(engine, max_workers=1) as service:
            got = service.execute(QueryRequest.create(
                ["restaurant", "cafe"], 1200.0, algorithm="tgen",
                policy=QueryPolicy.exact()))
        expected = engine.query(["restaurant", "cafe"], 1200.0, algorithm="tgen")
        assert got.region.nodes == expected.region.nodes
        assert got.weight == expected.weight
        assert got.length == expected.length

    def test_far_deadline_anytime_matches_exact(self, engine):
        with QueryService(engine, max_workers=1) as service:
            exact = service.execute(QueryRequest.create(
                ["restaurant"], 1000.0, algorithm="greedy"))
            anytime = service.execute(QueryRequest.create(
                ["restaurant"], 1000.0, algorithm="greedy",
                policy=QueryPolicy.anytime(3_600_000.0)))
        assert anytime.region.nodes == exact.region.nodes
        assert anytime.weight == exact.weight
        quality = ResultQuality.from_stats(anytime.stats)
        assert quality is not None and quality.kind == "anytime"
        assert quality.regret_bound == 0.0

    def test_sampled_answer_carries_a_ci(self, engine):
        with QueryService(engine, max_workers=1) as service:
            result = service.execute(QueryRequest.create(
                ["restaurant"], 1000.0, algorithm="greedy",
                policy=QueryPolicy.sampled(0.3, seed=2)))
        quality = ResultQuality.from_stats(result.stats)
        assert quality is not None and quality.kind == "sampled"
        assert quality.ci is not None and quality.ci >= 0.0

    def test_sampled_is_deterministic_per_seed(self, engine):
        policy = QueryPolicy.sampled(0.3, seed=5)
        with QueryService(engine, max_workers=1, result_cache_size=0,
                          instance_cache_size=0) as service:
            a = service.execute(QueryRequest.create(["restaurant"], 1000.0,
                                                    policy=policy))
            b = service.execute(QueryRequest.create(["restaurant"], 1000.0,
                                                    policy=policy))
        assert a is not b  # caches disabled: genuinely recomputed
        assert a.region.nodes == b.region.nodes
        assert a.weight == b.weight
        assert a.stats["quality_ci"] == b.stats["quality_ci"]


# ---------------------------------------------------------------- gateway
@pytest.fixture(scope="module")
def gateway_artifact(tmp_path_factory):
    from repro.datasets.ny import build_ny_like

    dataset = build_ny_like(rows=12, cols=12, block_size=120.0,
                            num_objects=260, num_clusters=5, seed=3)
    path = tmp_path_factory.mktemp("policy-gateway") / "artifact"
    bundle = IndexBundle.build(dataset.network, dataset.corpus,
                               grid_resolution=24)
    bundle.save(path)
    build_shards(bundle, path, num_shards=2, halo_margin=700.0)
    return path


class TestGatewayPolicy:
    def test_policy_requests_pickle_cleanly(self):
        for policy in (QueryPolicy.exact(), QueryPolicy.anytime(150.0),
                       QueryPolicy.sampled(0.25, seed=3)):
            request = QueryRequest.create(["cafe"], 800.0, policy=policy)
            restored = pickle.loads(pickle.dumps(request))
            assert restored == request
            assert restored.policy == policy

    def test_worker_processes_honour_the_policy(self, gateway_artifact):
        """A sampled request crosses the process boundary intact."""
        requests = [
            QueryRequest.create(["cafe"], 700.0, algorithm="greedy"),
            QueryRequest.create(["cafe"], 700.0, algorithm="greedy",
                                policy=QueryPolicy.sampled(0.3, seed=2)),
            QueryRequest.create(["cafe"], 700.0, algorithm="greedy",
                                policy=QueryPolicy.anytime(60_000.0)),
        ]
        with ShardedQueryService(gateway_artifact, num_workers=2) as service:
            exact, sampled, anytime = service.run_batch(requests)
        assert "quality_kind" not in exact.stats
        assert ResultQuality.from_stats(sampled.stats).kind == "sampled"
        assert ResultQuality.from_stats(anytime.stats).kind == "anytime"
        # The far-deadline anytime answer equals the exact one.
        assert anytime.region.nodes == exact.region.nodes
        assert anytime.weight == exact.weight


# ---------------------------------------------------------------- shedding
class TestLoadShedding:
    def test_constructor_validation(self, gateway_artifact):
        with pytest.raises(QueryError, match="shed_threshold must be >= 1"):
            ShardedQueryService(gateway_artifact, num_workers=1,
                                shed_threshold=0,
                                degraded_policy=QueryPolicy.sampled(0.3))
        with pytest.raises(QueryError, match="requires a degraded_policy"):
            ShardedQueryService(gateway_artifact, num_workers=1,
                                shed_threshold=4)
        with pytest.raises(QueryError, match="must be approximate"):
            ShardedQueryService(gateway_artifact, num_workers=1,
                                shed_threshold=4,
                                degraded_policy=QueryPolicy.exact())

    def test_below_threshold_requests_pass_through(self, gateway_artifact):
        service = ShardedQueryService(
            gateway_artifact, num_workers=1, shed_threshold=8,
            degraded_policy=QueryPolicy.sampled(0.3),
        )
        try:
            request = QueryRequest.create(["cafe"], 700.0)
            assert service._maybe_shed(request) is request
            assert service.shed == 0
        finally:
            service.close()

    def test_over_threshold_downgrades_exact_requests(self, gateway_artifact):
        degraded = QueryPolicy.sampled(0.3, seed=1)
        service = ShardedQueryService(
            gateway_artifact, num_workers=1, shed_threshold=1,
            degraded_policy=degraded,
        )
        try:
            with service._inflight_lock:
                service._in_flight += 1  # simulate a busy gateway
            shed = service._maybe_shed(QueryRequest.create(["cafe"], 700.0))
            assert shed.policy == degraded
            assert service.shed == 1
            # A request that already chose its approximation is untouched.
            own = QueryRequest.create(["cafe"], 700.0,
                                      policy=QueryPolicy.anytime(100.0))
            assert service._maybe_shed(own) is own
            assert service.shed == 1
            with service._inflight_lock:
                service._in_flight -= 1
        finally:
            service.close()

    def test_shed_request_answers_with_quality_stats(self, gateway_artifact):
        degraded = QueryPolicy.sampled(0.3, seed=1)
        service = ShardedQueryService(
            gateway_artifact, num_workers=1, shed_threshold=1,
            degraded_policy=degraded,
        )
        try:
            with service._inflight_lock:
                service._in_flight += 1  # trip the threshold
            result = service.execute(QueryRequest.create(
                ["cafe"], 700.0, algorithm="greedy"))
            with service._inflight_lock:
                service._in_flight -= 1
            assert service.shed == 1
            quality = ResultQuality.from_stats(result.stats)
            assert quality is not None and quality.kind == "sampled"
            assert service.in_flight == 0
        finally:
            service.close()

    def test_in_flight_settles_back_to_zero(self, gateway_artifact):
        with ShardedQueryService(gateway_artifact, num_workers=2) as service:
            service.run_batch(
                [QueryRequest.create(["cafe"], 600.0 + 50.0 * i)
                 for i in range(4)]
            )
            assert service.in_flight == 0
            assert service.shed == 0
