"""On-disk index-bundle artifacts: round trips, integrity checks, determinism.

Covers the guarantees :mod:`repro.service.persist` documents:

* save → load → query equality with the in-memory bundle (all solvers, top-k,
  NY-style and USANW-style datasets),
* manifest enforcement — unsupported format versions and checksum mismatches
  (corruption) are rejected with :class:`ArtifactError`,
* the memory-mapped CSR arrays come back read-only,
* two same-seed builds produce byte-identical artifacts (the determinism
  regression test for the dataset generators and the serialisation layer),
* the fingerprint-keyed artifact cache used by the evaluation runner.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.datasets.ny import build_ny_like
from repro.datasets.usanw import build_usanw_like
from repro.engine import LCMSREngine
from repro.evaluation.runner import ExperimentRunner
from repro.exceptions import ArtifactError
from repro.network.subgraph import Rectangle
from repro.service import (
    FORMAT_VERSION,
    IndexBundle,
    QueryRequest,
    QueryService,
    cached_dataset_bundle,
    dataset_fingerprint,
    read_manifest,
    verify_artifact,
)
from repro.service.persist import INDEX_NAME, MANIFEST_NAME, NETWORK_NAME, SCORING_NAME


def _tiny_dataset(seed: int = 3):
    return build_ny_like(rows=12, cols=12, block_size=120.0, num_objects=220,
                         num_clusters=5, seed=seed)


def _assert_same_result(result_a, result_b):
    assert result_a.region.nodes == result_b.region.nodes
    assert result_a.region.edges == result_b.region.edges
    assert result_a.length == pytest.approx(result_b.length, abs=1e-12)
    assert result_a.weight == pytest.approx(result_b.weight, abs=1e-12)


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    """One saved artifact (plus its source bundle) shared by the read-only tests."""
    dataset = _tiny_dataset()
    bundle = IndexBundle.from_dataset(dataset)
    path = tmp_path_factory.mktemp("artifacts") / "tiny-ny"
    bundle.save(path)
    return path, bundle


class TestRoundTrip:
    def test_loaded_bundle_answers_identically_for_all_solvers(self, artifact):
        path, bundle = artifact
        built_engine = LCMSREngine.from_bundle(bundle)
        loaded_engine = LCMSREngine.from_artifact(path)
        small_window = Rectangle(100.0, 100.0, 430.0, 430.0)
        for algorithm, kwargs in [
            ("app", {}),
            ("tgen", {}),
            ("greedy", {}),
            ("exact", {"region": small_window}),
        ]:
            built = built_engine.query(
                ["cafe", "restaurant"], delta=700.0, algorithm=algorithm, **kwargs
            )
            loaded = loaded_engine.query(
                ["cafe", "restaurant"], delta=700.0, algorithm=algorithm, **kwargs
            )
            _assert_same_result(built, loaded)

    def test_topk_round_trip(self, artifact):
        path, bundle = artifact
        built = LCMSREngine.from_bundle(bundle).query_topk(
            ["cafe"], delta=600.0, k=3, algorithm="tgen"
        )
        loaded = LCMSREngine.from_artifact(path).query_topk(
            ["cafe"], delta=600.0, k=3, algorithm="tgen"
        )
        assert len(built.results) == len(loaded.results)
        for result_b, result_l in zip(built.results, loaded.results):
            _assert_same_result(result_b, result_l)

    def test_usanw_style_round_trip(self, tmp_path):
        dataset = build_usanw_like(num_nodes=180, extent=5000.0, num_objects=180,
                                   num_clusters=4, seed=5)
        bundle = IndexBundle.from_dataset(dataset)
        bundle.save(tmp_path / "usanw")
        loaded = IndexBundle.load(tmp_path / "usanw")
        built_engine = LCMSREngine.from_bundle(bundle)
        loaded_engine = LCMSREngine.from_bundle(loaded)
        keywords = ["sunset", "beach"]
        for algorithm in ("app", "tgen", "greedy"):
            _assert_same_result(
                built_engine.query(keywords, delta=1200.0, algorithm=algorithm),
                loaded_engine.query(keywords, delta=1200.0, algorithm=algorithm),
            )

    def test_eager_load_matches_mmap_load(self, artifact):
        path, _ = artifact
        eager = IndexBundle.load(path, mmap=False)
        mapped = IndexBundle.load(path, mmap=True)
        result_e = LCMSREngine.from_bundle(eager).query(["bar"], delta=500.0)
        result_m = LCMSREngine.from_bundle(mapped).query(["bar"], delta=500.0)
        _assert_same_result(result_e, result_m)

    def test_query_service_accepts_artifact_path(self, artifact):
        path, bundle = artifact
        reference = LCMSREngine.from_bundle(bundle).query(["cafe"], delta=600.0)
        with QueryService(path, max_workers=2) as service:
            [result] = service.run_batch([QueryRequest.create(["cafe"], delta=600.0)])
        _assert_same_result(reference, result)

    def test_runner_from_loaded_bundle_matches_direct_runner(self, artifact):
        path, bundle = artifact
        from repro.core.query import LCMSRQuery
        from repro.core.tgen import TGENSolver

        query = LCMSRQuery.create(["cafe"], delta=800.0)
        direct = ExperimentRunner.from_bundle(bundle)
        loaded = ExperimentRunner.from_bundle(IndexBundle.load(path))
        _assert_same_result(
            direct.run_single(query, TGENSolver()).result,
            loaded.run_single(query, TGENSolver()).result,
        )


class TestIntegrity:
    def test_missing_artifact_raises(self, tmp_path):
        with pytest.raises(ArtifactError, match="manifest"):
            IndexBundle.load(tmp_path / "nowhere")

    def test_format_version_mismatch_is_rejected(self, tmp_path):
        bundle = IndexBundle.from_dataset(_tiny_dataset(seed=8))
        path = tmp_path / "versioned"
        bundle.save(path)
        manifest_path = path / MANIFEST_NAME
        raw = json.loads(manifest_path.read_text())
        raw["format_version"] = FORMAT_VERSION + 1
        manifest_path.write_text(json.dumps(raw))
        with pytest.raises(ArtifactError, match="format version"):
            IndexBundle.load(path)

    def test_pre_bump_artifact_is_rejected_with_a_rebuild_hint(self, tmp_path):
        # Format version 3 added the bound-aggregate columns to scoring.npz;
        # a version-2 artifact is missing them, so the loader must reject it
        # outright and tell the operator how to get a current one.
        bundle = IndexBundle.from_dataset(_tiny_dataset(seed=8))
        path = tmp_path / "pre-bump"
        bundle.save(path)
        manifest_path = path / MANIFEST_NAME
        raw = json.loads(manifest_path.read_text())
        raw["format_version"] = FORMAT_VERSION - 1
        manifest_path.write_text(json.dumps(raw))
        with pytest.raises(ArtifactError, match="rebuild the artifact"):
            IndexBundle.load(path)
        with pytest.raises(ArtifactError, match="python -m repro build"):
            read_manifest(path)

    @pytest.mark.parametrize("victim", [NETWORK_NAME, SCORING_NAME, INDEX_NAME])
    def test_corruption_is_rejected_by_checksums(self, tmp_path, victim):
        bundle = IndexBundle.from_dataset(_tiny_dataset(seed=8))
        path = tmp_path / "corrupt"
        bundle.save(path)
        target = path / victim
        blob = bytearray(target.read_bytes())
        blob[len(blob) // 2] ^= 0xFF  # flip one byte in the middle
        target.write_bytes(bytes(blob))
        with pytest.raises(ArtifactError, match="checksum mismatch"):
            IndexBundle.load(path)
        with pytest.raises(ArtifactError, match="checksum mismatch"):
            verify_artifact(path)

    def test_corrupt_npz_raises_artifact_error_even_without_verify(self, tmp_path):
        bundle = IndexBundle.from_dataset(_tiny_dataset(seed=8))
        path = tmp_path / "trusted-corrupt"
        bundle.save(path)
        (path / NETWORK_NAME).write_bytes(b"not a zip file at all")
        with pytest.raises(ArtifactError, match=NETWORK_NAME):
            IndexBundle.load(path, verify=False)

    def test_resaving_a_mmap_loaded_bundle_over_itself_is_safe(self, tmp_path):
        # The writer must not truncate files that the loaded bundle's memmaps
        # still point at (payloads are written to temp siblings and renamed).
        bundle = IndexBundle.from_dataset(_tiny_dataset(seed=9))
        path = tmp_path / "self-resave"
        bundle.save(path)
        loaded = IndexBundle.load(path)  # mmap-backed
        loaded.save(path, overwrite=True)
        reference = LCMSREngine.from_bundle(bundle).query(["cafe"], delta=600.0)
        # The original mapping still reads correctly AND the artifact reloads.
        _assert_same_result(
            reference, LCMSREngine.from_bundle(loaded).query(["cafe"], delta=600.0)
        )
        _assert_same_result(
            reference, LCMSREngine.from_artifact(path).query(["cafe"], delta=600.0)
        )
        assert not list(path.glob("*.tmp"))

    def test_duplicate_node_ids_are_rejected_at_construction(self):
        import numpy as np

        from repro.exceptions import GraphError
        from repro.network.compact import CompactNetwork

        with pytest.raises(GraphError, match="duplicate node ids"):
            CompactNetwork(
                np.array([1, 1], dtype=np.int64),
                np.zeros(2), np.zeros(2),
                np.array([0, 0, 0], dtype=np.int32),
                np.array([], dtype=np.int32),
                np.array([], dtype=np.float64),
            )

    def test_save_refuses_to_overwrite_without_flag(self, artifact):
        path, bundle = artifact
        with pytest.raises(ArtifactError, match="already exists"):
            bundle.save(path)
        # With the flag it succeeds (and the artifact stays loadable).
        bundle.save(path, overwrite=True)
        assert verify_artifact(path).fingerprint == read_manifest(path).fingerprint


class TestMmapSemantics:
    def test_mmap_loaded_arrays_are_read_only(self, artifact):
        path, _ = artifact
        loaded = IndexBundle.load(path)
        ids, xs, ys = loaded.compact.csr_node_arrays()
        indptr, indices, lengths = loaded.compact.csr_index_arrays()
        for array in (ids, xs, ys, indptr, indices, lengths):
            assert not array.flags.writeable
            with pytest.raises(ValueError):
                array[0] = array[0]

    def test_bound_columns_load_as_read_only_memmaps(self, artifact):
        # The format-version-3 aggregate columns ride in scoring.npz and must
        # come back as read-only memmaps like every other persisted array —
        # and still drive a working UpperBoundIndex.
        path, _ = artifact
        index = IndexBundle.load(path).weight_pipeline().index
        for name in (
            "bound_meta", "obj_cell", "node_cell", "cell_sigma_mass",
            "cell_sigma_max", "cell_node_mass", "cell_obj_count",
            "cell_post_count",
        ):
            array = getattr(index, name)
            assert not array.flags.writeable, name
            with pytest.raises(ValueError):
                array.reshape(-1)[:1] = 0
        from repro.core.bounds import UpperBoundIndex

        bounds = UpperBoundIndex.from_columnar(index, "text_relevance")
        window = Rectangle(0.0, 0.0, 1e6, 1e6)
        assert bounds.window_mass_bound(window) > 0.0

    def test_loaded_bundle_thaws_road_network_on_demand(self, artifact):
        path, bundle = artifact
        loaded = IndexBundle.load(path)
        assert loaded.network is None
        thawed = loaded.road_network()
        assert thawed.num_nodes == bundle.network.num_nodes
        assert thawed.num_edges == bundle.network.num_edges
        assert loaded.network is thawed  # cached


class TestDeterminism:
    def test_same_seed_builds_produce_byte_identical_artifacts(self, tmp_path):
        paths = []
        for index in range(2):
            dataset = _tiny_dataset(seed=21)
            bundle = IndexBundle.from_dataset(dataset)
            path = tmp_path / f"build-{index}"
            bundle.save(path)
            paths.append(path)
        first, second = paths
        files = sorted(p.name for p in first.iterdir())
        assert files == sorted(p.name for p in second.iterdir())
        for name in files:
            assert (first / name).read_bytes() == (second / name).read_bytes(), (
                f"{name} differs between two same-seed builds"
            )

    def test_from_dataset_bundle_shares_one_vsm(self):
        # The scorer must reference the grid's model, not a duplicate — otherwise
        # every artifact stores (and every load restores) the model twice.
        bundle = IndexBundle.from_dataset(_tiny_dataset(seed=21))
        assert bundle.scorer.vector_space_model is bundle.vsm
        assert bundle.grid.vector_space_model is bundle.vsm

    def test_different_seeds_produce_different_fingerprints(self):
        dataset_a = _tiny_dataset(seed=21)
        dataset_b = _tiny_dataset(seed=22)
        assert dataset_fingerprint(dataset_a.network, dataset_a.corpus) != \
            dataset_fingerprint(dataset_b.network, dataset_b.corpus)


class TestArtifactCache:
    def test_runner_cache_saves_then_reloads(self, tmp_path):
        dataset = _tiny_dataset(seed=30)
        cache = tmp_path / "cache"
        runner_first = ExperimentRunner(dataset, artifact_cache_dir=cache)
        [artifact_dir] = list(cache.iterdir())
        manifest = read_manifest(artifact_dir)
        assert manifest.fingerprint == dataset_fingerprint(dataset.network, dataset.corpus)

        runner_second = ExperimentRunner(dataset, artifact_cache_dir=cache)
        # The second runner's bundle came from disk: no dict network attached.
        assert runner_second.bundle.network is None

        from repro.core.query import LCMSRQuery
        from repro.core.greedy import GreedySolver

        query = LCMSRQuery.create(["cafe"], delta=700.0)
        _assert_same_result(
            runner_first.run_single(query, GreedySolver()).result,
            runner_second.run_single(query, GreedySolver()).result,
        )

    def test_cache_never_aliases_across_grid_resolutions(self, tmp_path):
        # Same network + corpus content, different index parameters: the cache
        # must serve a bundle built at the *requested* resolution.
        from dataclasses import replace

        from repro.index.grid import GridIndex

        dataset_48 = _tiny_dataset(seed=32)
        dataset_24 = replace(
            dataset_48,
            grid=GridIndex(dataset_48.corpus, resolution=24,
                           vsm=dataset_48.grid.vector_space_model),
        )
        cache = tmp_path / "cache"
        assert cached_dataset_bundle(dataset_48, cache).grid_resolution == 48
        assert cached_dataset_bundle(dataset_24, cache).grid_resolution == 24
        # And the original entry still serves the original resolution.
        assert cached_dataset_bundle(dataset_48, cache).grid_resolution == 48

    def test_stale_cache_entry_is_rebuilt(self, tmp_path):
        dataset = _tiny_dataset(seed=31)
        cache = tmp_path / "cache"
        bundle = cached_dataset_bundle(dataset, cache)
        [artifact_dir] = list(cache.iterdir())
        # Sabotage the stored fingerprint: the cache must treat it as stale.
        manifest_path = artifact_dir / MANIFEST_NAME
        raw = json.loads(manifest_path.read_text())
        raw["fingerprint"] = "0" * 64
        manifest_path.write_text(json.dumps(raw))
        rebuilt = cached_dataset_bundle(dataset, cache)
        assert rebuilt.network is not None  # fresh build, not a load
        assert read_manifest(artifact_dir).fingerprint == \
            dataset_fingerprint(dataset.network, dataset.corpus)
        assert bundle.describe().split(",")[0] == rebuilt.describe().split(",")[0]
