"""Chunk-compressed artifacts (format v5): parity, integrity, determinism.

Covers the compressed-columnar contracts :mod:`repro.service.persist` and
:mod:`repro.service.chunked` document:

* every scoring / network column decoded from a compressed artifact is
  bit-identical to the raw-memmap artifact's (whole-array, randomized slices,
  randomized gathers, scalar reads),
* hot columns (CSR offsets, pruning bounds) stay raw memory maps — a
  compressed artifact never pays a decode on the pruning / planning path,
* query results are byte-identical across raw, zlib and lzma artifacts for
  every solver, including through the serving layer's instance cache,
* chunk-level CRC-32 catches corruption that file-level checksum verification
  was asked to skip,
* v4 (uncompressed-era) artifacts are rejected with an actionable rebuild
  hint,
* the streaming build persists the same scoring / network / vocabulary bytes
  as the eager build, and compressed streaming builds are run-to-run
  deterministic.
"""

from __future__ import annotations

import json
import pickle
import shutil
import zipfile
from pathlib import Path

import numpy as np
import pytest

from repro.datasets.ny import build_ny_like, ny_like_parts
from repro.engine import LCMSREngine
from repro.exceptions import ArtifactError
from repro.network.subgraph import Rectangle
from repro.service import IndexBundle, QueryRequest, QueryService, verify_artifact
from repro.service.chunked import ChunkedColumn, decode_chunk, encode_chunk
from repro.service.persist import (
    INDEX_NAME,
    MANIFEST_NAME,
    NETWORK_NAME,
    SCORING_NAME,
    VOCABULARY_NAME,
    _CHUNK_MEMBER_RE,
    _COMPRESSED_NETWORK_COLUMNS,
    _COMPRESSED_SCORING_COLUMNS,
    _mmap_npz,
    _stored_member_offset,
    compression_spec,
    read_manifest,
)

_DATASET_PARAMS = dict(
    rows=12, cols=12, block_size=120.0, num_objects=260, num_clusters=5, seed=3
)


def _assert_same_result(result_a, result_b):
    assert result_a.region.nodes == result_b.region.nodes
    assert result_a.region.edges == result_b.region.edges
    assert result_a.length == pytest.approx(result_b.length, abs=1e-12)
    assert result_a.weight == pytest.approx(result_b.weight, abs=1e-12)


@pytest.fixture(scope="module")
def artifacts(tmp_path_factory):
    """The same bundle saved raw and zlib-compressed, plus the source bundle."""
    dataset = build_ny_like(**_DATASET_PARAMS)
    bundle = IndexBundle.from_dataset(dataset)
    root = tmp_path_factory.mktemp("compressed")
    raw, compressed = root / "raw", root / "zlib"
    bundle.save(raw)
    bundle.save(compressed, compress="zlib")
    return raw, compressed, bundle


# ------------------------------------------------------------- column parity
class TestChunkedColumnParity:
    def test_every_column_bit_identical_and_policy_respected(self, artifacts):
        raw, compressed, _ = artifacts
        for file_name, compressed_set in (
            (SCORING_NAME, _COMPRESSED_SCORING_COLUMNS),
            (NETWORK_NAME, _COMPRESSED_NETWORK_COLUMNS),
        ):
            raw_cols = _mmap_npz(raw / file_name)
            cmp_cols = _mmap_npz(compressed / file_name)
            assert set(raw_cols) == set(cmp_cols)
            chunked_names = set()
            for name in raw_cols:
                reference, candidate = raw_cols[name], cmp_cols[name]
                if isinstance(candidate, ChunkedColumn):
                    chunked_names.add(name)
                    assert name in compressed_set
                    assert candidate.dtype == reference.dtype
                    assert len(candidate) == len(reference)
                else:
                    # Raw-policy columns (indptr offsets, pruning bounds, ...)
                    # must come back as plain memmap-backed ndarrays.
                    assert isinstance(candidate, np.ndarray)
                assert np.array_equal(np.asarray(reference), np.asarray(candidate))
            assert chunked_names, f"no column of {file_name} was chunk-compressed"

    def test_randomized_slices_gathers_and_scalar_reads(self, artifacts):
        raw, compressed, _ = artifacts
        raw_cols = _mmap_npz(raw / SCORING_NAME)
        cmp_cols = _mmap_npz(compressed / SCORING_NAME)
        rng = np.random.default_rng(7)
        targets = [n for n, c in cmp_cols.items() if isinstance(c, ChunkedColumn)]
        for name in targets:
            reference = np.asarray(raw_cols[name])
            candidate = cmp_cols[name]
            n = len(reference)
            for _ in range(10):
                lo = int(rng.integers(0, n))
                hi = int(rng.integers(lo, n + 1))
                assert np.array_equal(candidate[lo:hi], reference[lo:hi]), name
                pos = int(rng.integers(0, n))
                assert candidate[pos] == reference[pos], name
                gather = rng.integers(0, n, size=min(n, 17))
                assert np.array_equal(candidate[gather], reference[gather]), name
            mask = rng.random(n) < 0.3
            assert np.array_equal(candidate[mask], reference[mask]), name

    def test_pickle_materialises_to_plain_readonly_ndarray(self, artifacts):
        _, compressed, _ = artifacts
        cmp_cols = _mmap_npz(compressed / SCORING_NAME)
        name = next(n for n, c in cmp_cols.items() if isinstance(c, ChunkedColumn))
        column = cmp_cols[name]
        clone = pickle.loads(pickle.dumps(column))
        assert type(clone) is np.ndarray
        assert not clone.flags.writeable
        assert np.array_equal(clone, np.asarray(column))


# -------------------------------------------------------------- query parity
class TestCompressedQueryParity:
    def test_all_solvers_identical_to_raw_artifact(self, artifacts):
        raw, compressed, _ = artifacts
        raw_engine = LCMSREngine.from_artifact(raw)
        cmp_engine = LCMSREngine.from_artifact(compressed)
        small_window = Rectangle(100.0, 100.0, 430.0, 430.0)
        for algorithm, kwargs in [
            ("app", {}),
            ("tgen", {}),
            ("greedy", {}),
            ("exact", {"region": small_window}),
        ]:
            _assert_same_result(
                raw_engine.query(
                    ["cafe", "restaurant"], delta=700.0, algorithm=algorithm, **kwargs
                ),
                cmp_engine.query(
                    ["cafe", "restaurant"], delta=700.0, algorithm=algorithm, **kwargs
                ),
            )

    def test_lzma_codec_round_trips(self, artifacts, tmp_path):
        raw, _, bundle = artifacts
        bundle.save(tmp_path / "lzma", compress="lzma")
        verify_artifact(tmp_path / "lzma")
        _assert_same_result(
            LCMSREngine.from_artifact(raw).query(["bar"], delta=600.0),
            LCMSREngine.from_artifact(tmp_path / "lzma").query(["bar"], delta=600.0),
        )

    def test_eager_load_decodes_all_chunks_up_front(self, artifacts):
        _, compressed, _ = artifacts
        eager = IndexBundle.load(compressed, mmap=False)
        mapped = IndexBundle.load(compressed, mmap=True)
        _assert_same_result(
            LCMSREngine.from_bundle(eager).query(["bar"], delta=500.0),
            LCMSREngine.from_bundle(mapped).query(["bar"], delta=500.0),
        )

    def test_service_batches_identical_through_instance_cache(self, artifacts):
        raw, compressed, _ = artifacts
        requests = [
            QueryRequest.create(["cafe", "restaurant"], delta=700.0),
            QueryRequest.create(["bar"], delta=500.0),
            QueryRequest.create(["cafe"], delta=600.0, k=3),
        ]
        outcomes = []
        for path in (raw, compressed):
            with QueryService(LCMSREngine.from_artifact(path)) as service:
                service.run_batch(requests)  # warm the instance cache
                outcomes.append(service.run_batch(requests))
        for result_raw, result_cmp in zip(*outcomes):
            if hasattr(result_raw, "results"):  # top-k
                for a, b in zip(result_raw.results, result_cmp.results):
                    _assert_same_result(a, b)
            else:
                _assert_same_result(result_raw, result_cmp)

    def test_unknown_codec_rejected(self):
        with pytest.raises(ArtifactError, match="unknown compression codec"):
            compression_spec("zstd")


# ----------------------------------------------------------------- integrity
class TestCompressedIntegrity:
    def test_decode_chunk_rejects_crc_mismatch(self):
        raw = np.arange(256, dtype=np.float64).tobytes()
        _, crc = encode_chunk(raw, 8, "zlib", 6, True)
        other_payload, _ = encode_chunk(bytes(len(raw)), 8, "zlib", 6, True)
        with pytest.raises(ArtifactError, match="chunk checksum mismatch"):
            decode_chunk(other_payload, 8, "zlib", True, crc, "scoring.npz:post_tfidf")

    def test_corrupted_chunk_payload_detected_without_file_verify(
        self, artifacts, tmp_path
    ):
        _, compressed, _ = artifacts
        victim = tmp_path / "corrupt"
        shutil.copytree(compressed, victim)
        scoring = victim / SCORING_NAME
        with zipfile.ZipFile(scoring) as archive:
            info = next(
                i for i in archive.infolist() if _CHUNK_MEMBER_RE.match(i.filename)
            )
        column = _CHUNK_MEMBER_RE.match(info.filename).group("column")
        with open(scoring, "rb") as handle:
            offset = _stored_member_offset(handle, scoring, info)
        with open(scoring, "r+b") as handle:
            handle.seek(offset + info.file_size // 2)
            byte = handle.read(1)
            handle.seek(-1, 1)
            handle.write(bytes([byte[0] ^ 0xFF]))
        # File-level verification is skipped (verify=False): the chunk layer
        # itself must catch the corruption at first decode.
        columns = _mmap_npz(scoring)
        with pytest.raises(ArtifactError, match="chunk"):
            np.asarray(columns[column])

    def test_v4_artifact_rejected_with_rebuild_hint(self, artifacts, tmp_path):
        raw, _, _ = artifacts
        stale = tmp_path / "v4"
        shutil.copytree(raw, stale)
        manifest = json.loads((stale / MANIFEST_NAME).read_text(encoding="utf-8"))
        manifest["format_version"] = 4
        (stale / MANIFEST_NAME).write_text(json.dumps(manifest), encoding="utf-8")
        with pytest.raises(ArtifactError) as excinfo:
            IndexBundle.load(stale)
        message = str(excinfo.value)
        assert "format version 4" in message
        assert "rebuild the artifact" in message
        assert "python -m repro build" in message


# ----------------------------------------------------------------- streaming
class TestStreamingBuildParity:
    def test_streamed_artifact_columns_byte_identical_to_eager(self, tmp_path):
        dataset = build_ny_like(**_DATASET_PARAMS)
        IndexBundle.from_dataset(dataset).save(tmp_path / "eager")
        network, objects = ny_like_parts(**_DATASET_PARAMS)
        streamed = IndexBundle.build_streaming(network, objects)
        streamed.save(tmp_path / "streamed")
        for name in (SCORING_NAME, NETWORK_NAME, VOCABULARY_NAME):
            assert (tmp_path / "eager" / name).read_bytes() == (
                tmp_path / "streamed" / name
            ).read_bytes(), name
        eager_sums = read_manifest(tmp_path / "eager").checksums
        streamed_sums = read_manifest(tmp_path / "streamed").checksums
        differing = {n for n in eager_sums if eager_sums[n] != streamed_sums[n]}
        # The pickled index differs by design (the streamed bundle carries
        # lazy shells instead of precomputed tables); the columns may not.
        assert differing <= {INDEX_NAME}
        _assert_same_result(
            LCMSREngine.from_artifact(tmp_path / "eager").query(
                ["cafe", "restaurant"], delta=700.0
            ),
            LCMSREngine.from_artifact(tmp_path / "streamed").query(
                ["cafe", "restaurant"], delta=700.0
            ),
        )

    def test_compressed_streaming_build_is_deterministic(self, tmp_path):
        for run in ("one", "two"):
            network, objects = ny_like_parts(**_DATASET_PARAMS)
            bundle = IndexBundle.build_streaming(network, objects)
            bundle.save(tmp_path / run, compress="zlib")
        for name in (MANIFEST_NAME, SCORING_NAME, NETWORK_NAME, INDEX_NAME,
                     VOCABULARY_NAME):
            assert (tmp_path / "one" / name).read_bytes() == (
                tmp_path / "two" / name
            ).read_bytes(), name
