"""Mutable world: delta overlay, compaction and generation-swapped serving.

The contract under test (see ``docs/ARCHITECTURE.md`` § Mutable world &
generations): after a compaction, a frozen-world query against generation N+1
is **byte-identical** to a cold rebuild of the mutated dataset — same regions,
same order, bit-equal weights and lengths — for every solver, every scoring
mode and both solver backends. Before compaction, overlay serving merges the
pending mutations into node weights at query time; for mutations that leave
the collection statistics untouched (rating changes, coordinate moves) the
overlay answers are additionally byte-identical to the post-compaction ones.

This is the mutation analogue of the solver-backend, pruning and sharding
parity suites.
"""

from __future__ import annotations

import dataclasses
import random
import threading

import pytest

from repro.core.result import TopKResult
from repro.datasets.ny import build_ny_like
from repro.engine import LCMSREngine
from repro.exceptions import ArtifactError, DatasetError
from repro.network.subgraph import Rectangle
from repro.objects.corpus import ObjectCorpus
from repro.objects.geoobject import GeoTextualObject
from repro.service.bundle import IndexBundle
from repro.service.generations import (
    CURRENT_NAME,
    DELTA_LOG_NAME,
    Compactor,
    DeltaOverlay,
    append_delta_ops,
    apply_ops,
    clear_delta_log,
    generation_dirs,
    next_generation_name,
    overlay_from_delta_log,
    read_delta_log,
    resolve_generation,
    set_current_generation,
    write_delta_log,
)
from repro.service.query_service import QueryRequest, QueryService
from repro.textindex.relevance import ScoringMode

SEED = 11
SOLVERS = ("app", "tgen", "greedy")
BACKENDS = ("dict", "dense")


def _build_dataset():
    return build_ny_like(rows=8, cols=8, block_size=120.0, num_objects=140,
                         num_clusters=5, seed=SEED)


@pytest.fixture(scope="module")
def dataset():
    return _build_dataset()


@pytest.fixture(scope="module")
def base_bundles(dataset):
    """One frozen base bundle per scoring mode."""
    return {
        mode: IndexBundle.build(dataset.network, dataset.corpus,
                                grid_resolution=16, scoring_mode=mode)
        for mode in ScoringMode
    }


def _signature(result):
    if isinstance(result, TopKResult):
        return tuple((r.region.nodes, r.region.edges, r.weight, r.length)
                     for r in result)
    return (result.region.nodes, result.region.edges, result.weight, result.length)


def _vocab(corpus):
    return [term for term, _ in corpus.most_frequent_terms(8)]


def _mutation_script(corpus, rng, stats_preserving=False):
    """A randomized mutation script over ``corpus``.

    Returns the delta-log op list. With ``stats_preserving`` the script only
    changes ratings and coordinates (term df / |D| untouched), the envelope in
    which overlay serving is provably byte-identical to the compacted world.
    """
    vocab = _vocab(corpus)
    ids = sorted(corpus.object_ids())
    touched = rng.sample(ids, 8)
    ops = []
    for object_id in touched[:3]:
        ops.append({"op": "rate", "id": object_id,
                    "rating": round(rng.uniform(0.5, 5.0), 2)})
    for object_id in touched[3:5]:
        obj = corpus.get(object_id)
        # Coordinate move: same keyword frequencies, new location.
        ops.append({"op": "update", "id": object_id,
                    "x": obj.x + rng.uniform(-150.0, 150.0),
                    "y": obj.y + rng.uniform(-150.0, 150.0),
                    "keywords": dict(obj.keywords), "rating": obj.rating})
    if not stats_preserving:
        for object_id in touched[5:7]:
            ops.append({"op": "remove", "id": object_id})
        for offset in range(3):
            terms = rng.sample(vocab, 2) + [rng.choice(vocab)]
            ops.append({"op": "add", "id": 90000 + offset,
                        "x": rng.uniform(100.0, 700.0),
                        "y": rng.uniform(100.0, 700.0),
                        "keywords": terms,
                        "rating": round(rng.uniform(0.5, 5.0), 2)})
        # Re-mutate an already-touched object: the overlay must keep its
        # first-insertion position (dict semantics) for order parity.
        ops.append({"op": "rate", "id": touched[0], "rating": 2.25})
    return ops


def _expected_corpus(base_corpus, ops):
    """Apply ``ops`` independently of DeltaOverlay, in its documented order.

    Canonical mutated order: surviving base objects in base order (skipping
    every id with an overlay entry), then overlay entries in first-touch
    order.
    """
    entries = {}

    def current(object_id):
        if object_id in entries:
            obj = entries[object_id]
            if obj is None:
                raise AssertionError(f"script touches removed id {object_id}")
            return obj
        return base_corpus.get(object_id)

    for op in ops:
        object_id = int(op["id"])
        if op["op"] == "rate":
            obj = dataclasses.replace(current(object_id), rating=float(op["rating"]))
        elif op["op"] in ("add", "update"):
            keywords = op["keywords"]
            if isinstance(keywords, dict):
                obj = GeoTextualObject(object_id, float(op["x"]), float(op["y"]),
                                       dict(keywords), float(op.get("rating", 1.0)))
            else:
                obj = GeoTextualObject.create(object_id, op["x"], op["y"],
                                              keywords, float(op.get("rating", 1.0)))
        else:
            obj = None
        entries[object_id] = obj  # dict keeps the first-touch position
    corpus = ObjectCorpus()
    for obj in base_corpus:
        if obj.object_id in entries:
            continue
        corpus.add(obj)
    for object_id, obj in entries.items():
        if obj is not None:
            corpus.add(obj)
    return corpus


def _queries(dataset):
    min_x, min_y, max_x, max_y = dataset.network.bounding_box()
    width, height = max_x - min_x, max_y - min_y
    vocab = _vocab(dataset.corpus)
    small = Rectangle.from_center(min_x + 0.4 * width, min_y + 0.4 * height, 300, 300)
    wide = Rectangle.from_center(min_x + 0.5 * width, min_y + 0.5 * height, 600, 600)
    return [
        (vocab[:2], 500.0, None),
        (vocab[1:4], 600.0, wide),
        (vocab[:3], 400.0, small),
    ], small


# ------------------------------------------------------------- mutation parity
@pytest.mark.parametrize("mode", list(ScoringMode))
def test_post_compaction_byte_identical_to_cold_rebuild(dataset, base_bundles, mode):
    """The tentpole contract: generation N+1 == cold rebuild of the mutated set."""
    rng = random.Random(SEED + 100)
    ops = _mutation_script(dataset.corpus, rng)
    engine = LCMSREngine.from_bundle(base_bundles[mode])
    overlay = DeltaOverlay(engine.bundle)
    apply_ops(overlay, ops)
    engine.attach_overlay(overlay)
    Compactor(engine).compact()

    cold_bundle = IndexBundle.build(
        dataset.network, _expected_corpus(dataset.corpus, ops),
        grid_resolution=16, scoring_mode=mode,
    )
    cold = LCMSREngine.from_bundle(cold_bundle)

    queries, small = _queries(dataset)
    for keywords, delta, region in queries:
        for name in SOLVERS:
            assert _signature(engine.query(keywords, delta=delta, region=region,
                                           algorithm=name)) == \
                _signature(cold.query(keywords, delta=delta, region=region,
                                      algorithm=name)), (mode, name, keywords)
            assert _signature(engine.query_topk(keywords, delta=delta, k=3,
                                                region=region, algorithm=name)) == \
                _signature(cold.query_topk(keywords, delta=delta, k=3,
                                           region=region, algorithm=name))
    # Exact on a tiny window only (exponential solver).
    keywords, delta, _ = queries[0]
    assert _signature(engine.query(keywords, delta=300.0, region=small,
                                   algorithm="exact")) == \
        _signature(cold.query(keywords, delta=300.0, region=small,
                              algorithm="exact"))


@pytest.mark.parametrize("mode", list(ScoringMode))
@pytest.mark.parametrize("backend", BACKENDS)
def test_post_compaction_parity_across_solver_backends(dataset, base_bundles,
                                                       mode, backend):
    rng = random.Random(SEED + 200)
    ops = _mutation_script(dataset.corpus, rng)
    engine = LCMSREngine.from_bundle(base_bundles[mode])
    overlay = DeltaOverlay(engine.bundle)
    apply_ops(overlay, ops)
    engine.attach_overlay(overlay)
    Compactor(engine).compact()
    cold = LCMSREngine.from_bundle(IndexBundle.build(
        dataset.network, _expected_corpus(dataset.corpus, ops),
        grid_resolution=16, scoring_mode=mode,
    ))
    queries, _ = _queries(dataset)
    from repro.core.query import LCMSRQuery

    for keywords, delta, region in queries:
        query = LCMSRQuery.create(keywords, delta=delta, region=region)
        hot = engine.build_instance(query).with_backend(backend)
        ref = cold.build_instance(query).with_backend(backend)
        for name in SOLVERS:
            assert _signature(engine.solver(name).solve(hot)) == \
                _signature(cold.solver(name).solve(ref))


@pytest.mark.parametrize("mode", list(ScoringMode))
def test_overlay_serving_matches_compacted_for_stats_preserving_script(
        dataset, base_bundles, mode):
    """Rating changes and coordinate moves: overlay answers == generation N+1."""
    rng = random.Random(SEED + 300)
    ops = _mutation_script(dataset.corpus, rng, stats_preserving=True)
    engine = LCMSREngine.from_bundle(base_bundles[mode])
    overlay = DeltaOverlay(engine.bundle)
    apply_ops(overlay, ops)
    engine.attach_overlay(overlay)

    queries, _ = _queries(dataset)
    before = [
        _signature(engine.query(keywords, delta=delta, region=region, algorithm=name))
        for keywords, delta, region in queries for name in SOLVERS
    ]
    Compactor(engine).compact()
    after = [
        _signature(engine.query(keywords, delta=delta, region=region, algorithm=name))
        for keywords, delta, region in queries for name in SOLVERS
    ]
    assert before == after


def test_overlay_serving_merges_full_script_in_rating_mode(dataset, base_bundles):
    """In rating mode the overlay is exact for the *full* script (adds/removes
    included): object scores don't depend on collection statistics."""
    rng = random.Random(SEED + 400)
    ops = _mutation_script(dataset.corpus, rng)
    engine = LCMSREngine.from_bundle(base_bundles[ScoringMode.RATING_IF_MATCH])
    overlay = DeltaOverlay(engine.bundle)
    apply_ops(overlay, ops)
    engine.attach_overlay(overlay)
    queries, _ = _queries(dataset)
    before = [
        _signature(engine.query(keywords, delta=delta, region=region, algorithm=name))
        for keywords, delta, region in queries for name in SOLVERS
    ]
    Compactor(engine).compact()
    after = [
        _signature(engine.query(keywords, delta=delta, region=region, algorithm=name))
        for keywords, delta, region in queries for name in SOLVERS
    ]
    assert before == after


def test_overlay_object_in_base_empty_window_is_found(dataset, base_bundles):
    """The zero-mass window skip must not hide overlay-only objects."""
    engine = LCMSREngine.from_bundle(base_bundles[ScoringMode.RATING_IF_MATCH])
    min_x, min_y, max_x, max_y = dataset.network.bounding_box()
    window = Rectangle(min_x - 300.0, min_y - 300.0, min_x + 60.0, min_y + 60.0)
    empty = engine.query(["zzz-nowhere"], delta=400.0, region=window)
    assert empty.is_empty
    overlay = DeltaOverlay(engine.bundle)
    overlay.add_object(GeoTextualObject.create(
        91000, min_x + 10.0, min_y + 10.0, ["zzz-nowhere"], rating=2.0))
    engine.attach_overlay(overlay)
    found = engine.query(["zzz-nowhere"], delta=400.0, region=window)
    assert not found.is_empty
    assert found.weight == pytest.approx(2.0)


# ------------------------------------------------------------ overlay contract
class TestOverlayValidation:
    @pytest.fixture()
    def overlay(self, base_bundles):
        return DeltaOverlay(base_bundles[ScoringMode.TEXT_RELEVANCE])

    def test_add_existing_id_rejected(self, overlay, dataset):
        existing = next(iter(dataset.corpus))
        with pytest.raises(DatasetError, match="live in the merged view"):
            overlay.add_object(existing)

    def test_update_unknown_id_rejected(self, overlay):
        with pytest.raises(DatasetError, match="unknown"):
            overlay.update_object(GeoTextualObject.create(87654, 1.0, 1.0, ["x"]))

    def test_remove_unknown_id_rejected(self, overlay):
        with pytest.raises(DatasetError, match="unknown"):
            overlay.remove_object(87654)

    def test_rate_unknown_id_rejected(self, overlay):
        with pytest.raises(DatasetError, match="unknown"):
            overlay.set_rating(87654, 3.0)

    def test_frozen_overlay_rejects_mutations(self, overlay, dataset):
        overlay.set_rating(next(iter(dataset.corpus)).object_id, 3.0)
        overlay.freeze()
        with pytest.raises(DatasetError, match="frozen"):
            overlay.remove_object(next(iter(dataset.corpus)).object_id)
        overlay.unfreeze()
        overlay.set_rating(next(iter(dataset.corpus)).object_id, 2.0)

    def test_remove_then_read_is_unknown(self, overlay, dataset):
        victim = next(iter(dataset.corpus)).object_id
        overlay.remove_object(victim)
        assert not overlay.is_live(victim)
        with pytest.raises(DatasetError, match="unknown"):
            overlay.get(victim)

    def test_version_counts_mutations(self, overlay, dataset):
        assert overlay.version == 0 and not overlay.has_pending
        overlay.set_rating(next(iter(dataset.corpus)).object_id, 3.0)
        assert overlay.version == 1 and overlay.has_pending
        assert overlay.pending_count == 1

    def test_compact_without_pending_rejected(self, base_bundles):
        engine = LCMSREngine.from_bundle(base_bundles[ScoringMode.TEXT_RELEVANCE])
        with pytest.raises(DatasetError, match="nothing to compact"):
            Compactor(engine).compact()


# ----------------------------------------------------------- delta log on disk
class TestDeltaLog:
    def test_roundtrip_append_clear(self, tmp_path):
        assert read_delta_log(tmp_path) == []
        ops = [{"op": "rate", "id": 1, "rating": 2.0}]
        write_delta_log(tmp_path, ops)
        assert read_delta_log(tmp_path) == ops
        total = append_delta_ops(tmp_path, [{"op": "remove", "id": 2}])
        assert total == 2
        assert [op["op"] for op in read_delta_log(tmp_path)] == ["rate", "remove"]
        clear_delta_log(tmp_path)
        assert read_delta_log(tmp_path) == []
        assert not (tmp_path / DELTA_LOG_NAME).exists()

    def test_malformed_log_rejected_with_recovery_hint(self, tmp_path):
        (tmp_path / DELTA_LOG_NAME).write_text("{not json", encoding="utf-8")
        with pytest.raises(ArtifactError, match="delete the file"):
            read_delta_log(tmp_path)

    def test_unknown_op_kind_rejected(self, base_bundles):
        overlay = DeltaOverlay(base_bundles[ScoringMode.TEXT_RELEVANCE])
        with pytest.raises(ArtifactError, match="unknown mutation op"):
            apply_ops(overlay, [{"op": "teleport", "id": 1}])

    def test_overlay_from_empty_log_is_none(self, base_bundles, tmp_path):
        assert overlay_from_delta_log(
            base_bundles[ScoringMode.TEXT_RELEVANCE], tmp_path) is None


# --------------------------------------------------------- end-to-end, on disk
def test_disk_mutate_compact_serves_cold_equivalent(dataset, base_bundles, tmp_path):
    root = tmp_path / "artifact"
    bundle = base_bundles[ScoringMode.TEXT_RELEVANCE]
    bundle.save(root)
    rng = random.Random(SEED + 500)
    ops = _mutation_script(dataset.corpus, rng)
    append_delta_ops(root, ops)

    # Overlay serving straight from the artifact root.
    live = LCMSREngine.from_artifact(root)
    assert live.overlay is not None and live.overlay.has_pending
    queries, _ = _queries(dataset)
    keywords, delta, region = queries[1]
    live.query(keywords, delta=delta, region=region)  # overlay path exercises

    report = Compactor(live, root=root).compact()
    assert report.generation == "gen-0001"
    assert (root / "gen-0001" / "manifest.json").is_file()
    assert (root / CURRENT_NAME).read_text(encoding="utf-8").strip() == "gen-0001"
    assert read_delta_log(root) == []
    assert live.overlay is None  # swap dropped the overlay
    assert live.bundle_generation == 1

    # A fresh process (from_artifact) now serves the new generation, and it is
    # byte-identical to a cold rebuild of the mutated corpus.
    fresh = LCMSREngine.from_artifact(root)
    assert fresh.overlay is None
    cold = LCMSREngine.from_bundle(IndexBundle.build(
        dataset.network, _expected_corpus(dataset.corpus, ops),
        grid_resolution=16, scoring_mode=ScoringMode.TEXT_RELEVANCE,
    ))
    for keywords, delta, region in queries:
        for name in SOLVERS:
            assert _signature(fresh.query(keywords, delta=delta, region=region,
                                          algorithm=name)) == \
                _signature(cold.query(keywords, delta=delta, region=region,
                                      algorithm=name))
    # The swapped live engine agrees with the fresh load.
    assert _signature(live.query(keywords, delta=delta, region=region)) == \
        _signature(fresh.query(keywords, delta=delta, region=region))


def test_second_compaction_gets_next_generation_number(dataset, base_bundles,
                                                       tmp_path):
    root = tmp_path / "artifact"
    base_bundles[ScoringMode.RATING_IF_MATCH].save(root)
    some_id = next(iter(dataset.corpus)).object_id
    append_delta_ops(root, [{"op": "rate", "id": some_id, "rating": 4.0}])
    engine = LCMSREngine.from_artifact(root)
    assert Compactor(engine, root=root).compact().generation == "gen-0001"
    append_delta_ops(root, [{"op": "rate", "id": some_id, "rating": 1.5}])
    engine = LCMSREngine.from_artifact(root)
    assert engine.overlay is not None
    report = Compactor(engine, root=root).compact()
    assert report.generation == "gen-0002"
    assert resolve_generation(root) == root / "gen-0002"


# ------------------------------------------------------------ generation store
class TestGenerationStore:
    def test_resolve_without_pointer_is_root(self, tmp_path):
        assert resolve_generation(tmp_path) == tmp_path

    def test_next_generation_name_never_reuses(self, tmp_path):
        assert next_generation_name(tmp_path) == "gen-0001"
        (tmp_path / "gen-0007").mkdir()
        assert next_generation_name(tmp_path) == "gen-0008"

    def test_partial_generation_ignored_with_warning(self, tmp_path):
        partial = tmp_path / "gen-0001"
        partial.mkdir()
        (partial / "scoring.npz").write_bytes(b"half-written")
        with pytest.warns(UserWarning, match="partially-written"):
            dirs = generation_dirs(tmp_path)
        assert dirs == []
        with pytest.warns(UserWarning, match="mid-compaction"):
            assert resolve_generation(tmp_path) == tmp_path

    def test_dangling_current_pointer_rejected_with_recovery(self, tmp_path):
        (tmp_path / CURRENT_NAME).write_text("gen-0003\n", encoding="utf-8")
        with pytest.raises(ArtifactError, match="compact"):
            resolve_generation(tmp_path)

    def test_current_pointer_with_invalid_name_rejected(self, tmp_path):
        (tmp_path / CURRENT_NAME).write_text("../escape\n", encoding="utf-8")
        with pytest.raises(ArtifactError):
            resolve_generation(tmp_path)

    def test_set_current_requires_manifest(self, tmp_path):
        (tmp_path / "gen-0001").mkdir()
        with pytest.raises(ArtifactError, match="refusing"):
            set_current_generation(tmp_path, "gen-0001")


# ----------------------------------------------- cache identity and staleness
def test_services_over_different_artifacts_never_cross_pollinate(base_bundles):
    """Regression: cache keys must carry the bundle identity."""
    other = build_ny_like(rows=8, cols=8, block_size=120.0, num_objects=140,
                          num_clusters=5, seed=SEED + 1)
    engine_a = LCMSREngine.from_bundle(base_bundles[ScoringMode.TEXT_RELEVANCE])
    engine_b = LCMSREngine.from_bundle(IndexBundle.build(
        other.network, other.corpus, grid_resolution=16,
        scoring_mode=ScoringMode.TEXT_RELEVANCE))
    assert engine_a.bundle_cache_key != engine_b.bundle_cache_key

    # A mutation + compaction of the second world keeps the keys apart too
    # (fingerprint and generation both move).
    overlay = DeltaOverlay(engine_b.bundle)
    some = next(iter(engine_b.corpus))
    overlay.set_rating(some.object_id, 4.9)
    engine_b.attach_overlay(overlay)
    Compactor(engine_b).compact()
    assert engine_a.bundle_cache_key != engine_b.bundle_cache_key

    vocab = _vocab(engine_a.corpus)
    request = QueryRequest.create(vocab[:2], delta=500.0)
    with QueryService(engine_a, max_workers=2) as service_a, \
            QueryService(engine_b, max_workers=2) as service_b:
        service_a.run_batch([request])
        service_b.run_batch([request])
        keys_a = set(service_a._result_cache.keys())
        keys_b = set(service_b._result_cache.keys())
        assert keys_a and keys_b and not (keys_a & keys_b)
        assert {key.bundle_key for key in keys_a} == {engine_a.bundle_cache_key}
        assert {key.bundle_key for key in keys_b} == {engine_b.bundle_cache_key}


# --------------------------------------------------- sharded serving + swaps
def _mutate_and_compact(root, dataset):
    some_id = next(iter(dataset.corpus)).object_id
    append_delta_ops(root, [{"op": "rate", "id": some_id, "rating": 4.2}])
    engine = LCMSREngine.from_artifact(root)
    return Compactor(engine, root=root).compact()


def test_compaction_mirrors_shard_set_onto_new_generation(dataset, base_bundles,
                                                          tmp_path):
    from repro.service.sharding import build_shards, load_shard_set

    root = tmp_path / "artifact"
    bundle = base_bundles[ScoringMode.RATING_IF_MATCH]
    manifest = bundle.save(root)
    build_shards(bundle, root, num_shards=2, halo_margin=500.0,
                 base_fingerprint=manifest.fingerprint)
    report = _mutate_and_compact(root, dataset)
    assert report.resharded
    shard_set = load_shard_set(root / "gen-0001")
    assert shard_set is not None and shard_set.num_shards == 2
    assert shard_set.halo_margin == 500.0


def test_stale_shard_set_against_new_generation_rejected(dataset, base_bundles,
                                                         tmp_path):
    import shutil

    from repro.service.sharding import (
        SHARD_SET_NAME,
        SHARDS_DIRNAME,
        build_shards,
        load_shard_set,
    )

    root = tmp_path / "artifact"
    bundle = base_bundles[ScoringMode.RATING_IF_MATCH]
    manifest = bundle.save(root)
    build_shards(bundle, root, num_shards=2, halo_margin=500.0,
                 base_fingerprint=manifest.fingerprint)
    _mutate_and_compact(root, dataset)
    generation = root / "gen-0001"
    # Simulate an operator copying the *base* shard set over the new
    # generation's: its recorded base fingerprint no longer matches.
    shutil.copy2(root / SHARDS_DIRNAME / SHARD_SET_NAME,
                 generation / SHARDS_DIRNAME / SHARD_SET_NAME)
    with pytest.raises(ArtifactError, match="stale shard set.*rebuild"):
        load_shard_set(generation)


def test_sharded_service_refresh_swaps_generation(dataset, base_bundles, tmp_path):
    from repro.service.sharding import ShardedQueryService, build_shards

    root = tmp_path / "artifact"
    bundle = base_bundles[ScoringMode.RATING_IF_MATCH]
    manifest = bundle.save(root)
    build_shards(bundle, root, num_shards=2, halo_margin=500.0,
                 base_fingerprint=manifest.fingerprint)
    vocab = _vocab(dataset.corpus)
    request = QueryRequest.create(vocab[:2], delta=450.0)
    with ShardedQueryService(root, num_workers=2) as service:
        assert service.served_path == root
        service.run_batch([request])  # pre-swap serving, warms the old pool
        _mutate_and_compact(root, dataset)
        assert service.refresh() is True
        assert service.served_path == root / "gen-0001"
        assert service.refresh() is False  # already serving CURRENT
        after = service.run_batch([request])[0]
        expected = LCMSREngine.from_artifact(root).query(
            request.keywords, delta=request.delta, region=request.region)
        assert _signature(after) == _signature(expected)


def test_generation_swap_invalidates_service_caches(dataset, base_bundles):
    """A swap retires every cache entry keyed to the old generation."""
    engine = LCMSREngine.from_bundle(base_bundles[ScoringMode.TEXT_RELEVANCE])
    vocab = _vocab(dataset.corpus)
    requests = [QueryRequest.create(vocab[i:i + 2], delta=500.0) for i in range(4)]
    with QueryService(engine, max_workers=2) as service:
        service.run_batch(requests)
        old_key = engine.bundle_cache_key
        assert {k.bundle_key for k in service._result_cache.keys()} == {old_key}

        overlay = DeltaOverlay(engine.bundle)
        overlay.set_rating(next(iter(dataset.corpus)).object_id, 3.3)
        engine.attach_overlay(overlay)
        Compactor(engine).compact()
        new_key = engine.bundle_cache_key
        assert new_key != old_key

        service.run_batch(requests[:1])
        result_keys = set(service._result_cache.keys())
        instance_keys = set(service._instance_cache.keys())
        assert result_keys and {k.bundle_key for k in result_keys} == {new_key}
        assert {k.bundle_key for k in instance_keys} <= {new_key}


def test_concurrent_queries_during_generation_swap(dataset, base_bundles):
    """Hammer a service through a swap: nothing stale survives the dust."""
    engine = LCMSREngine.from_bundle(base_bundles[ScoringMode.RATING_IF_MATCH])
    vocab = _vocab(dataset.corpus)
    overlay = DeltaOverlay(engine.bundle)
    victim = next(iter(dataset.corpus))
    overlay.set_rating(victim.object_id, 4.7)
    engine.attach_overlay(overlay)
    compactor = Compactor(engine)

    requests = [QueryRequest.create(vocab[i % 4:i % 4 + 2], delta=450.0)
                for i in range(8)]
    errors = []
    started = threading.Barrier(5)

    with QueryService(engine, max_workers=4) as service:
        def hammer():
            try:
                started.wait(timeout=10)
                for _ in range(6):
                    service.run_batch(requests)
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        started.wait(timeout=10)
        report = compactor.compact()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        assert report.mutations == 1

        # One post-swap query; afterwards every surviving cache entry must be
        # keyed to the new generation — no entry from generation N remains.
        service.run_batch(requests[:1])
        new_key = engine.bundle_cache_key
        assert ":g1:" in new_key
        for key in service._result_cache.keys():
            assert key.bundle_key == new_key
        for key in service._instance_cache.keys():
            assert key.bundle_key == new_key

        # And the served answers reflect the compacted world.
        expected_engine = LCMSREngine.from_bundle(engine.bundle)
        for request in requests[:3]:
            got = service.submit(request).result(timeout=30)
            want = expected_engine.query(request.keywords, delta=request.delta,
                                         region=request.region)
            assert _signature(got) == _signature(want)
