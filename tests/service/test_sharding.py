"""Sharded serving: partitioner, router, gateway and byte-identity parity.

The contract under test (see ``docs/ARCHITECTURE.md`` § Sharded serving): a
query dispatched to any shard whose extent contains its window answers
**byte-identically** to the unsharded artifact — same regions, same order,
bit-equal weights and lengths — for every solver, every scoring mode and every
shard count. The parity suite here is the sharding analogue of the solver
backend and pruning parity suites.
"""

from __future__ import annotations

import json
import pickle
import shutil

import pytest

from repro.core.region import Region
from repro.core.result import RegionResult, TopKResult
from repro.datasets.ny import build_ny_like
from repro.engine import LCMSREngine
from repro.exceptions import ArtifactError, QueryError
from repro.network.subgraph import Rectangle
from repro.service.bundle import IndexBundle
from repro.service.keys import ResultKey
from repro.service.persist import read_manifest, verify_artifact
from repro.service.query_service import QueryRequest, QueryService
from repro.service.sharding import (
    SHARD_SET_NAME,
    SHARDS_DIRNAME,
    ShardedQueryService,
    ShardInfo,
    ShardRouter,
    ShardSetManifest,
    WorkerConfig,
    build_shards,
    load_shard_set,
    merge_topk,
)
from repro.service.stats import QueryTiming
from repro.textindex.relevance import ScoringMode

SEED = 3
SHARD_COUNTS = (1, 2, 4)
HALO = 700.0
SOLVERS = ("app", "tgen", "greedy")


def _build_dataset():
    return build_ny_like(rows=12, cols=12, block_size=120.0, num_objects=260,
                         num_clusters=5, seed=SEED)


@pytest.fixture(scope="module")
def dataset():
    return _build_dataset()


@pytest.fixture(scope="module")
def sharded_artifacts(dataset, tmp_path_factory):
    """One artifact per (scoring mode, shard count), with shards built."""
    root = tmp_path_factory.mktemp("sharded")
    artifacts = {}
    for mode in ScoringMode:
        bundle = IndexBundle.build(dataset.network, dataset.corpus,
                                   grid_resolution=24, scoring_mode=mode)
        for num_shards in SHARD_COUNTS:
            path = root / f"{mode.value}-k{num_shards}"
            bundle.save(path)
            build_shards(bundle, path, num_shards=num_shards, halo_margin=HALO)
            artifacts[(mode, num_shards)] = path
    return artifacts


@pytest.fixture(scope="module")
def parity_queries(dataset):
    """Windows chosen against the tile geometry: interior, straddling, halo."""
    min_x, min_y, max_x, max_y = dataset.network.bounding_box()
    width, height = max_x - min_x, max_y - min_y
    keywords_pool = [t for t, _ in dataset.corpus.most_frequent_terms(6)]
    queries = []
    # Window well inside one tile (every K).
    queries.append((keywords_pool[:3], 500.0,
                    Rectangle.from_center(min_x + 0.25 * width,
                                          min_y + 0.25 * height, 500, 500)))
    # Window straddling the K=2 and K=4 tile boundaries (centered on the bbox
    # center, where all tiles meet) — contained in several extents via halo.
    queries.append((keywords_pool[1:4], 600.0,
                    Rectangle.from_center(min_x + 0.5 * width,
                                          min_y + 0.5 * height, 600, 600)))
    # Window entirely inside the halo band of the neighbouring shard: its
    # center sits just across the vertical K=2 boundary, the whole window
    # within HALO of it.
    queries.append((keywords_pool[2:5], 400.0,
                    Rectangle.from_center(min_x + 0.5 * width + 200,
                                          min_y + 0.4 * height, 350, 350)))
    # Whole-network query (routes to a covers_all shard or the base).
    queries.append((keywords_pool[:2], 700.0, None))
    return queries


def _signature(result):
    if isinstance(result, TopKResult):
        return tuple((r.region.nodes, r.region.edges, r.weight, r.length)
                     for r in result)
    return (result.region.nodes, result.region.edges, result.weight, result.length)


# ---------------------------------------------------------------- parity suite
def test_sharded_answers_byte_identical(sharded_artifacts, parity_queries):
    """Every solver x mode x K: shard answers == unsharded answers, bit for bit."""
    for (mode, num_shards), path in sharded_artifacts.items():
        full = QueryService(LCMSREngine.from_artifact(path), max_workers=1)
        shard_set = load_shard_set(path)
        router = ShardRouter(shard_set)
        shard_services = {}
        for keywords, delta, region in parity_queries:
            for algorithm in SOLVERS:
                for k in (1, 3):
                    request = QueryRequest.create(
                        keywords, delta=delta, region=region,
                        algorithm=algorithm, k=k,
                    )
                    expected = _signature(full.execute(request))
                    route = router.route(region)
                    # EVERY shard whose extent contains the window must agree
                    # with the base artifact, not just the owner.
                    targets = route.candidates if route.candidates else (-1,)
                    for part in targets:
                        if part < 0:
                            continue  # base fallback IS the reference
                        service = shard_services.get(part)
                        if service is None:
                            shard_dir = path / SHARDS_DIRNAME / f"shard-{part:02d}"
                            service = QueryService(
                                LCMSREngine.from_artifact(shard_dir),
                                max_workers=1,
                            )
                            shard_services[part] = service
                        got = _signature(service.execute(request))
                        assert got == expected, (
                            f"{mode.value} K={num_shards} shard {part} "
                            f"{algorithm} k={k} region={region}"
                        )


def test_straddling_window_contained_by_multiple_extents(sharded_artifacts):
    """The straddling window really exercises the halo: >= 2 candidate shards."""
    path = sharded_artifacts[(ScoringMode.TEXT_RELEVANCE, 4)]
    shard_set = load_shard_set(path)
    bbox = Rectangle(*shard_set.bbox)
    center_window = Rectangle.from_center(
        (bbox.min_x + bbox.max_x) / 2, (bbox.min_y + bbox.max_y) / 2, 600, 600
    )
    route = ShardRouter(shard_set).route(center_window)
    assert len(route.candidates) >= 2
    # The owner (the tile holding the window center) is dispatched first.
    owner_tile = Rectangle(*shard_set.shards[route.shard].tile)
    assert owner_tile.contains(*center_window.center())


def test_shard_roundtrip_through_bundle_load(sharded_artifacts):
    """Each shard is a complete artifact: checksum-verified load succeeds."""
    path = sharded_artifacts[(ScoringMode.TEXT_RELEVANCE, 2)]
    shard_set = load_shard_set(path)
    for info in shard_set.shards:
        shard_dir = path / SHARDS_DIRNAME / info.name
        manifest = verify_artifact(shard_dir)
        assert manifest.fingerprint == info.fingerprint
        assert manifest.shard["part"] == info.part
        bundle = IndexBundle.load(shard_dir, verify=True)
        assert len(bundle.corpus) > 0
        assert bundle.columnar is not None
        # Global statistics survive the subset: shard IDF == corpus-global IDF.
        assert bundle.columnar.global_num_objects == 260


def test_shard_set_manifest_roundtrip(sharded_artifacts):
    path = sharded_artifacts[(ScoringMode.TEXT_RELEVANCE, 4)]
    shard_set = load_shard_set(path)
    again = ShardSetManifest.from_json(shard_set.to_json())
    assert again == shard_set
    assert again.tiles == (2, 2)
    assert again.num_shards == 4


# ---------------------------------------------------------------- staleness
def test_stale_base_fingerprint_rejected(sharded_artifacts, tmp_path):
    source = sharded_artifacts[(ScoringMode.TEXT_RELEVANCE, 2)]
    path = tmp_path / "stale"
    shutil.copytree(source, path)
    set_path = path / SHARDS_DIRNAME / SHARD_SET_NAME
    raw = json.loads(set_path.read_text())
    raw["base_fingerprint"] = "0" * 64
    set_path.write_text(json.dumps(raw))
    with pytest.raises(ArtifactError, match="stale shard set.*--shards 2"):
        load_shard_set(path)
    with pytest.raises(ArtifactError, match="stale shard set"):
        ShardedQueryService(path, num_workers=1)


def test_missing_shard_rejected(sharded_artifacts, tmp_path):
    source = sharded_artifacts[(ScoringMode.TEXT_RELEVANCE, 2)]
    path = tmp_path / "missing"
    shutil.copytree(source, path)
    shutil.rmtree(path / SHARDS_DIRNAME / "shard-01")
    with pytest.raises(ArtifactError, match="shard-01 is missing"):
        load_shard_set(path)


def test_foreign_shard_rejected(sharded_artifacts, tmp_path):
    """A shard partitioned from a different base artifact is refused."""
    source = sharded_artifacts[(ScoringMode.TEXT_RELEVANCE, 2)]
    path = tmp_path / "foreign"
    shutil.copytree(source, path)
    shard_manifest = path / SHARDS_DIRNAME / "shard-00" / "manifest.json"
    raw = json.loads(shard_manifest.read_text())
    raw["shard"]["base_fingerprint"] = "f" * 64
    shard_manifest.write_text(json.dumps(raw))
    with pytest.raises(ArtifactError, match="shard-00.*base fingerprint mismatch"):
        load_shard_set(path)


def test_no_shard_set_is_not_an_error(dataset, tmp_path):
    bundle = IndexBundle.build(dataset.network, dataset.corpus, grid_resolution=24)
    bundle.save(tmp_path / "plain")
    assert load_shard_set(tmp_path / "plain") is None


def test_existing_shard_set_requires_overwrite(sharded_artifacts, dataset):
    path = sharded_artifacts[(ScoringMode.TEXT_RELEVANCE, 1)]
    bundle = IndexBundle.build(dataset.network, dataset.corpus, grid_resolution=24)
    with pytest.raises(ArtifactError, match="shard set already exists"):
        build_shards(bundle, path, num_shards=1, halo_margin=HALO)


def test_empty_tile_rejected_with_actionable_error(dataset, tmp_path):
    """A shard count so high that some halo-expanded tile holds no objects."""
    bundle = IndexBundle.build(dataset.network, dataset.corpus, grid_resolution=24)
    bundle.save(tmp_path / "art")
    with pytest.raises(ArtifactError, match="no objects.*fewer shards"):
        build_shards(bundle, tmp_path / "art", num_shards=256, halo_margin=0.0)


# ---------------------------------------------------------------- router units
def _manifest_two_tiles():
    return ShardSetManifest(
        base_fingerprint="a" * 64,
        halo_margin=100.0,
        tiles=(2, 1),
        bbox=(0.0, 0.0, 2000.0, 1000.0),
        shards=(
            ShardInfo("shard-00", 0, (0.0, 0.0, 1000.0, 1000.0),
                      (-100.0, -100.0, 1100.0, 1100.0), "s0", False),
            ShardInfo("shard-01", 1, (1000.0, 0.0, 2000.0, 1000.0),
                      (900.0, -100.0, 2100.0, 1100.0), "s1", False),
        ),
    )


def test_router_prefers_owning_tile():
    router = ShardRouter(_manifest_two_tiles())
    # Center at x=950 -> owner is tile 0, but both extents contain the window.
    window = Rectangle(920.0, 400.0, 980.0, 460.0)
    route = router.route(window)
    assert route.shard == 0
    assert set(route.candidates) == {0, 1}


def test_router_falls_back_to_base():
    router = ShardRouter(_manifest_two_tiles())
    # Wider than any extent -> no shard can answer it byte-identically.
    assert router.route(Rectangle(0.0, 0.0, 2000.0, 1000.0)).shard == -1
    # region=None with no covers_all shard -> base.
    assert router.route(None).shard == -1
    # No shard set at all -> base.
    assert ShardRouter(None).route(Rectangle(0, 0, 1, 1)).shard == -1


class _FakeBounds:
    """window_mass_bound stub: zero mass right of x=900."""

    def window_mass_bound(self, window):
        return 0.0 if window.min_x >= 900.0 else 5.0


def test_scatter_plan_skips_zero_mass_shards():
    router = ShardRouter(_manifest_two_tiles(), bounds=_FakeBounds())
    # The window crosses both tiles, but every object lives left of x=900:
    # shard 1's share of the window (window ∩ extent, starting at x=900) is
    # provably empty and is skipped.
    window = Rectangle(800.0, 200.0, 1400.0, 800.0)
    assert router.scatter_plan(window) == (0,)
    # Without bounds both intersecting tiles participate.
    assert ShardRouter(_manifest_two_tiles()).scatter_plan(window) == (0, 1)
    # A window whose shares are all provably empty still runs somewhere.
    far_right = Rectangle(1600.0, 0.0, 1900.0, 500.0)
    assert router.scatter_plan(far_right) == (-1,)


# ---------------------------------------------------------------- merge units
def _result(nodes, weight, length, algorithm="TGEN"):
    region = Region(nodes=frozenset(nodes),
                    edges=frozenset((a, b) for a, b in zip(nodes, nodes[1:])),
                    length=length, weight=weight)
    return RegionResult(region=region, algorithm=algorithm)


def test_merge_topk_orders_by_weight_then_length():
    a = TopKResult(results=(_result([1, 2], 5.0, 30.0),
                            _result([3, 4], 3.0, 10.0)), algorithm="TGEN")
    b = TopKResult(results=(_result([5, 6], 5.0, 20.0),
                            _result([7, 8], 4.0, 40.0)), algorithm="TGEN")
    merged = merge_topk([a, b], k=3)
    # Exact's candidate ranking: descending weight, then descending length.
    assert [(r.weight, r.length) for r in merged.results] == [
        (5.0, 30.0), (5.0, 20.0), (4.0, 40.0)
    ]
    assert merged.stats["shards_merged"] == 2.0


def test_merge_topk_dedupes_halo_duplicates():
    duplicate = _result([1, 2], 5.0, 30.0)
    merged = merge_topk(
        [TopKResult(results=(duplicate,), algorithm="TGEN"),
         TopKResult(results=(duplicate,), algorithm="TGEN")], k=5,
    )
    assert len(merged.results) == 1


def test_merge_topk_drops_empty_answers():
    empty = RegionResult(region=Region.empty(), algorithm="Greedy")
    merged = merge_topk([empty, _result([1], 2.0, 0.0)], k=2)
    assert len(merged.results) == 1
    assert merge_topk([empty], k=2).results == ()
    with pytest.raises(QueryError):
        merge_topk([], k=0)


# ---------------------------------------------------------------- gateway
@pytest.fixture(scope="module")
def gateway_artifact(sharded_artifacts):
    return sharded_artifacts[(ScoringMode.TEXT_RELEVANCE, 2)]


def test_sharded_service_batch_parity(gateway_artifact, parity_queries):
    """The process gateway returns exactly what the unsharded service returns."""
    requests = [
        QueryRequest.create(keywords, delta=delta, region=region,
                            algorithm=algorithm, k=k)
        for keywords, delta, region in parity_queries
        for algorithm in ("tgen", "greedy")
        for k in (1, 3)
    ]
    full = QueryService(LCMSREngine.from_artifact(gateway_artifact), max_workers=1)
    expected = [_signature(full.execute(r)) for r in requests]
    with ShardedQueryService(gateway_artifact, num_workers=2) as service:
        got = [_signature(r) for r in service.run_batch(requests)]
        stats = service.stats()
    assert got == expected
    assert stats.queries == len(requests)
    assert stats.total_seconds > 0.0


def test_scatter_topk_exact_matches_global_optimum(gateway_artifact):
    """Exact solver + halo >= delta: scattered top-k weights == global weights."""
    shard_set = load_shard_set(gateway_artifact)
    bbox = Rectangle(*shard_set.bbox)
    window = Rectangle.from_center(
        (bbox.min_x + bbox.max_x) / 2, (bbox.min_y + bbox.max_y) / 2, 450, 450
    )
    delta = 400.0
    assert delta <= shard_set.halo_margin
    engine = LCMSREngine.from_artifact(gateway_artifact)
    keywords = [t for t, _ in engine.corpus.most_frequent_terms(2)]
    global_topk = engine.query_topk(keywords, delta=delta, k=2, region=window,
                                    algorithm="exact")
    with ShardedQueryService(gateway_artifact, num_workers=2) as service:
        merged = service.scatter_topk(keywords, delta=delta, k=2, region=window,
                                      algorithm="exact")
    assert [r.weight for r in merged.results] == [r.weight for r in global_topk.results]
    assert [r.length for r in merged.results] == [r.length for r in global_topk.results]


def test_admission_control_rejects_when_full(gateway_artifact):
    service = ShardedQueryService(gateway_artifact, num_workers=1, max_in_flight=2)
    try:
        # Exhaust the admission slots without involving worker processes.
        assert service._admission.acquire(blocking=False)
        assert service._admission.acquire(blocking=False)
        request = QueryRequest.create(["cafe"], delta=500.0)
        with pytest.raises(QueryError, match="admission queue full"):
            service.submit(request)
        assert service.rejected == 1
        service._admission.release()
        service._admission.release()
        # With slots free again the same submission is accepted and completes.
        assert service.submit(request).result(timeout=120) is not None
    finally:
        service.close()
    with pytest.raises(QueryError, match="closed"):
        service.execute(request)


def test_worker_config_and_requests_pickle_roundtrip(gateway_artifact):
    """Everything that crosses the process boundary must pickle cleanly."""
    config = WorkerConfig(base_path=str(gateway_artifact), shard_paths=("a", "b"))
    assert pickle.loads(pickle.dumps(config)) == config
    request = QueryRequest.create(
        ["cafe", "bar"], delta=800.0,
        region=Rectangle(0.0, 0.0, 100.0, 100.0), algorithm="tgen", k=3,
    )
    assert pickle.loads(pickle.dumps(request)) == request
    timing = QueryTiming(
        key=ResultKey.create(("cafe",), 800.0, None, 1, "tgen",
                             ScoringMode.TEXT_RELEVANCE),
        algorithm="tgen", result_cache_hit=False, instance_cache_hit=True,
        build_seconds=0.1, solve_seconds=0.2, total_seconds=0.3,
    )
    assert pickle.loads(pickle.dumps(timing)) == timing
    result = _result([1, 2, 3], 4.0, 120.0)
    assert pickle.loads(pickle.dumps(result)) == result
    topk = TopKResult(results=(result,), algorithm="TGEN", runtime_seconds=0.5)
    restored = pickle.loads(pickle.dumps(topk))
    assert restored.results == topk.results
    assert restored.algorithm == topk.algorithm
