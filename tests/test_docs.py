"""Documentation checks that run in tier-1 (``make docs-check`` runs just these).

Keeps the documentation suite honest as the repo grows:

* every intra-repo link in the tracked markdown files resolves to a real file,
* README.md keeps its required sections (install, quickstart, algorithms, tests),
* docs/ARCHITECTURE.md keeps covering every package under ``src/repro/``,
* the quickstart code shown in README.md names only real public API.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

import repro

REPO_ROOT = Path(__file__).resolve().parent.parent

DOC_FILES = [
    REPO_ROOT / "README.md",
    REPO_ROOT / "docs" / "ARCHITECTURE.md",
    REPO_ROOT / "ROADMAP.md",
]

_LINK_PATTERN = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")


def intra_repo_links(markdown: str):
    """Yield link targets that point inside the repository."""
    for target in _LINK_PATTERN.findall(markdown):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        yield target.split("#", 1)[0]


class TestLinks:
    @pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
    def test_doc_exists(self, doc):
        assert doc.is_file(), f"missing documentation file {doc.relative_to(REPO_ROOT)}"

    @pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
    def test_intra_repo_links_resolve(self, doc):
        broken = []
        for target in intra_repo_links(doc.read_text(encoding="utf-8")):
            resolved = (doc.parent / target).resolve()
            if not resolved.exists():
                broken.append(target)
        assert not broken, f"broken links in {doc.name}: {broken}"


class TestReadmeSections:
    REQUIRED_SECTIONS = [
        "## Install",
        "## Quickstart",
        "## Algorithms",
        "## Tests and benchmarks",
        "## Documentation",
    ]

    @pytest.fixture(scope="class")
    def readme(self) -> str:
        return (REPO_ROOT / "README.md").read_text(encoding="utf-8")

    @pytest.mark.parametrize("section", REQUIRED_SECTIONS)
    def test_required_section_present(self, readme, section):
        assert section in readme, f"README.md lost its {section!r} section"

    def test_names_the_paper(self, readme):
        assert "PVLDB" in readme and "LCMSR" in readme

    def test_mentions_every_algorithm(self, readme):
        for algorithm in ("app", "tgen", "greedy", "exact"):
            assert f"`{algorithm}`" in readme, f"README algorithm table lost {algorithm!r}"

    def test_quickstart_names_real_api(self, readme):
        # Each name the README imports from repro must actually be exported.
        for match in re.finditer(r"^from repro import (.+)$", readme, re.MULTILINE):
            for name in match.group(1).split(","):
                name = name.strip()
                assert hasattr(repro, name), f"README imports unknown name {name!r}"

    def test_shows_tier1_command(self, readme):
        assert "python -m pytest -x -q" in readme


class TestArchitectureDoc:
    @pytest.fixture(scope="class")
    def architecture(self) -> str:
        return (REPO_ROOT / "docs" / "ARCHITECTURE.md").read_text(encoding="utf-8")

    def test_covers_every_package(self, architecture):
        packages = sorted(
            p.parent.name
            for p in (REPO_ROOT / "src" / "repro").glob("*/__init__.py")
        )
        missing = [pkg for pkg in packages if f"repro.{pkg}" not in architecture]
        assert not missing, f"docs/ARCHITECTURE.md does not cover packages: {missing}"

    def test_has_data_flow_diagram(self, architecture):
        assert "ProblemInstance" in architecture and "RegionResult" in architecture
