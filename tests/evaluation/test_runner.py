"""Tests for the experiment runner."""

from __future__ import annotations

import pytest

from repro.core import GreedySolver, TGENSolver
from repro.datasets.queries import generate_workload
from repro.evaluation.runner import ExperimentRunner


@pytest.fixture(scope="module")
def workload(tiny_ny_dataset):
    # The session-scoped dataset fixture comes from tests/conftest.py.
    return generate_workload(
        tiny_ny_dataset, num_queries=3, num_keywords=2, delta=1200.0, area_km2=1.0, seed=21
    )


class TestRunner:
    def test_build_instance_windows_to_query(self, tiny_ny_dataset, workload):
        runner = ExperimentRunner(tiny_ny_dataset)
        instance = runner.build(workload[0])
        assert instance.num_candidate_nodes <= tiny_ny_dataset.network.num_nodes
        assert instance.query is workload[0]

    def test_run_collects_all_outcomes(self, tiny_ny_dataset, workload):
        runner = ExperimentRunner(tiny_ny_dataset)
        runs = runner.run(workload, [GreedySolver(0.2), TGENSolver(alpha=30.0)])
        assert set(runs) == {"Greedy", "TGEN"}
        for run in runs.values():
            assert len(run.outcomes) == len(workload)
            assert run.mean_runtime >= 0.0
            assert run.mean_weight >= 0.0

    def test_relative_ratio_against_reference(self, tiny_ny_dataset, workload):
        runner = ExperimentRunner(tiny_ny_dataset)
        runs = runner.run(workload, [GreedySolver(0.2), TGENSolver(alpha=30.0)])
        ratio = runs["Greedy"].relative_ratio_against(runs["TGEN"])
        assert 0.0 <= ratio <= 1.5

    def test_grid_and_scorer_paths_agree_on_weights(self, tiny_ny_dataset, workload):
        """The grid-index path and the direct-scorer path produce the same instance."""
        indexed = ExperimentRunner(tiny_ny_dataset, use_grid_index=True).build(workload[0])
        direct = ExperimentRunner(tiny_ny_dataset, use_grid_index=False).build(workload[0])
        assert set(indexed.weights) == set(direct.weights)
        for node_id, weight in indexed.weights.items():
            assert weight == pytest.approx(direct.weights[node_id])

    def test_run_single(self, tiny_ny_dataset, workload):
        runner = ExperimentRunner(tiny_ny_dataset)
        outcome = runner.run_single(workload[0], GreedySolver(0.2))
        assert outcome.weight >= 0.0
        assert outcome.runtime >= 0.0
