"""Tests for the evaluation metrics."""

from __future__ import annotations

import pytest

from repro.core.region import Region
from repro.core.result import RegionResult
from repro.evaluation.metrics import (
    average_relative_ratio,
    mean,
    relative_ratio,
    summarize_results,
)


class TestMean:
    def test_empty(self):
        assert mean([]) == 0.0

    def test_values(self):
        assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)


class TestRelativeRatio:
    def test_normal_case(self):
        assert relative_ratio(4.5, 5.0) == pytest.approx(0.9)

    def test_zero_reference(self):
        assert relative_ratio(0.0, 0.0) == 1.0
        assert relative_ratio(3.0, 0.0) == 1.0

    def test_candidate_can_exceed_reference(self):
        assert relative_ratio(6.0, 5.0) == pytest.approx(1.2)

    def test_average(self):
        assert average_relative_ratio([1.0, 2.0], [2.0, 2.0]) == pytest.approx(0.75)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            average_relative_ratio([1.0], [1.0, 2.0])


class TestSummaries:
    def test_summarize_results(self):
        results = [
            RegionResult(Region.single_node(1, 2.0), "X", runtime_seconds=0.5),
            RegionResult(Region.empty(), "X", runtime_seconds=1.5),
        ]
        summary = summarize_results(results)
        assert summary["queries"] == 2
        assert summary["mean_runtime_seconds"] == pytest.approx(1.0)
        assert summary["mean_weight"] == pytest.approx(1.0)
        assert summary["empty_results"] == 1
