"""Tests for the simulated annotator study (Section 7.5)."""

from __future__ import annotations

import pytest

from repro.evaluation.survey import (
    RegionJudgement,
    SimulatedAnnotator,
    SurveyResult,
    run_survey,
)


def judgement(objects, weight, connected, length):
    return RegionJudgement(
        relevant_objects=objects, total_weight=weight, connected=connected, road_length=length
    )


class TestAnnotator:
    def test_more_coverage_preferred(self):
        annotator = SimulatedAnnotator(seed=1)
        better = judgement(15, 5.9, True, 8000)
        worse = judgement(7, 3.6, True, 8000)
        assert annotator.prefers_first(better, worse) is True
        assert annotator.prefers_first(worse, better) is False

    def test_connected_region_preferred_at_equal_coverage(self):
        annotator = SimulatedAnnotator(seed=2)
        connected = judgement(10, 4.0, True, 5000)
        disconnected = judgement(10, 4.0, False, 5000)
        assert annotator.prefers_first(connected, disconnected) is True

    def test_identical_regions_tie(self):
        annotator = SimulatedAnnotator(seed=3)
        same = judgement(10, 4.0, True, 5000)
        assert annotator.prefers_first(same, same) is None

    def test_annotators_differ_but_agree_on_clear_cases(self):
        strong = judgement(20, 8.0, True, 6000)
        weak = judgement(3, 1.0, False, 6000)
        for seed in range(10):
            assert SimulatedAnnotator(seed).prefers_first(strong, weak) is True


class TestSurvey:
    def test_empty_survey(self):
        result = run_survey([])
        assert result.queries == 0
        assert result.lcmsr_preference_rate == 0.0

    def test_majority_rule(self):
        pairs = [
            (judgement(15, 5.9, True, 8000), judgement(7, 3.6, False, 8000)),
            (judgement(12, 4.8, True, 8000), judgement(11, 4.5, False, 8000)),
            (judgement(2, 0.5, True, 8000), judgement(10, 6.0, True, 500)),
        ]
        result = run_survey(pairs, num_annotators=5, majority=3, seed=7)
        assert result.queries == 3
        assert result.lcmsr_wins >= 2
        assert result.lcmsr_wins + result.maxrs_wins + result.ties == 3
        assert 0.0 <= result.lcmsr_preference_rate <= 1.0

    def test_paper_like_scenario_prefers_lcmsr(self):
        """The paper's Figure 17-19 numbers: LCMSR regions cover more connected
        relevant objects than the MaxRS rectangle; the panel must prefer them."""
        pairs = []
        for _ in range(20):
            lcmsr = judgement(15, 5.9, True, 8000)
            maxrs = judgement(9, 3.9, False, 8000)
            pairs.append((lcmsr, maxrs))
        result = run_survey(pairs)
        assert result.lcmsr_preference_rate >= 0.9
