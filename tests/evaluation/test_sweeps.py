"""Tests for parameter sweeps and reporting (the figure-series machinery)."""

from __future__ import annotations

import math

import pytest

from repro.core import GreedySolver, TGENSolver
from repro.datasets.queries import generate_workload
from repro.evaluation.reporting import format_series, format_table
from repro.evaluation.runner import ExperimentRunner
from repro.evaluation.sweeps import (
    ParameterSweep,
    SweepPoint,
    sweep_query_arguments,
    sweep_solver_parameter,
)


class TestSweepDataStructures:
    def test_series_extraction(self):
        sweep = ParameterSweep(axis="alpha")
        sweep.add_point(SweepPoint(x=0.1, runtimes={"APP": 1.0}, weights={"APP": 5.0}))
        sweep.add_point(SweepPoint(x=0.5, runtimes={"APP": 0.5}, weights={"APP": 4.8}))
        assert sweep.series("runtime", "APP") == [(0.1, 1.0), (0.5, 0.5)]
        assert sweep.series("weight", "APP") == [(0.1, 5.0), (0.5, 4.8)]
        assert sweep.algorithms() == ["APP"]
        missing = sweep.series("ratio", "APP")
        assert all(math.isnan(value) for _, value in missing)


class TestSweepExecution:
    def test_solver_parameter_sweep(self, tiny_ny_dataset):
        runner = ExperimentRunner(tiny_ny_dataset)
        workload = generate_workload(
            tiny_ny_dataset, num_queries=2, num_keywords=2, delta=1000.0, area_km2=1.0, seed=31
        )
        sweep = sweep_solver_parameter(
            runner, "mu", workload, lambda mu: GreedySolver(mu=mu), [0.0, 0.5, 1.0]
        )
        assert [point.x for point in sweep.points] == [0.0, 0.5, 1.0]
        for point in sweep.points:
            assert "Greedy" in point.runtimes
            assert point.weights["Greedy"] >= 0.0

    def test_query_argument_sweep_with_ratio(self, tiny_ny_dataset):
        runner = ExperimentRunner(tiny_ny_dataset)
        settings = []
        for keywords in (1, 2):
            workload = generate_workload(
                tiny_ny_dataset,
                num_queries=2,
                num_keywords=keywords,
                delta=1000.0,
                area_km2=1.0,
                seed=40 + keywords,
            )
            settings.append((float(keywords), workload))
        sweep = sweep_query_arguments(
            runner, "keywords", settings, [TGENSolver(alpha=30.0), GreedySolver(0.2)]
        )
        assert len(sweep.points) == 2
        for point in sweep.points:
            assert point.ratios["TGEN"] == pytest.approx(1.0)
            assert 0.0 <= point.ratios["Greedy"] <= 1.5


class TestReporting:
    def test_format_table(self):
        table = format_table(["a", "b"], [[1, 2.34567], ["x", 0.5]], title="demo")
        assert "demo" in table
        assert "2.346" in table
        lines = table.splitlines()
        assert len(lines) == 5  # title, header, rule, two rows

    def test_format_series(self):
        sweep = ParameterSweep(axis="alpha")
        sweep.add_point(SweepPoint(x=0.1, runtimes={"APP": 1.0}, weights={"APP": 5.0}))
        text = format_series(sweep, "runtime")
        assert "alpha" in text
        assert "APP" in text
        assert "runtime" in text
