"""End-to-end integration tests across the whole stack.

These tests exercise the full paper pipeline on the small NY-like dataset: index
construction → query workload → instance building through the grid index → all three
solvers → metrics, plus the Section 7.5 MaxRS-vs-LCMSR comparison pipeline.
"""

from __future__ import annotations

import pytest

from repro.baselines.maxrs import MaxRSSolver
from repro.core import APPSolver, GreedySolver, LCMSRQuery, TGENSolver, build_instance
from repro.datasets.queries import generate_workload
from repro.evaluation.runner import ExperimentRunner
from repro.evaluation.survey import RegionJudgement, run_survey
from repro.network.shortest_path import steiner_tree_length
from repro.network.subgraph import Rectangle


@pytest.fixture(scope="module")
def workload(tiny_ny_dataset):
    return generate_workload(
        tiny_ny_dataset, num_queries=4, num_keywords=2, delta=1200.0, area_km2=1.0, seed=77
    )


class TestFullPipeline:
    def test_all_solvers_return_valid_regions(self, tiny_ny_dataset, workload):
        runner = ExperimentRunner(tiny_ny_dataset)
        solvers = [TGENSolver(alpha=20.0), APPSolver(alpha=0.5, beta=0.1), GreedySolver(0.2)]
        runs = runner.run(workload, solvers)
        for name, run in runs.items():
            for outcome in run.outcomes:
                region = outcome.result.region
                assert region.satisfies(outcome.query.delta), name
                if not region.is_empty:
                    region.validate(runner.build(outcome.query).graph)

    def test_accuracy_ordering_holds_on_average(self, tiny_ny_dataset, workload):
        runner = ExperimentRunner(tiny_ny_dataset)
        runs = runner.run(
            workload, [TGENSolver(alpha=20.0), APPSolver(alpha=0.5, beta=0.1), GreedySolver(0.2)]
        )
        reference = runs["TGEN"]
        app_ratio = runs["APP"].relative_ratio_against(reference)
        greedy_ratio = runs["Greedy"].relative_ratio_against(reference)
        # Paper: APP stays above 90 % of TGEN; Greedy is clearly below the other two.
        assert app_ratio >= 0.85
        assert greedy_ratio <= app_ratio + 0.1

    def test_region_objects_are_relevant(self, tiny_ny_dataset, workload):
        """Every weighted node of a returned region hosts at least one object matching
        a query keyword — the index layer and the solvers agree on relevance."""
        runner = ExperimentRunner(tiny_ny_dataset)
        query = workload[0]
        instance = runner.build(query)
        result = TGENSolver(alpha=20.0).solve(instance)
        corpus = tiny_ny_dataset.corpus
        mapping = tiny_ny_dataset.mapping
        weighted_nodes = [n for n in result.region.nodes if instance.weight_of(n) > 0]
        assert weighted_nodes
        for node_id in weighted_nodes:
            objects = [corpus.get(o) for o in mapping.objects_at(node_id)]
            assert any(obj.contains_any(query.keywords) for obj in objects)


class TestMaxRSComparisonPipeline:
    def test_section_7_5_procedure(self, tiny_ny_dataset, workload):
        """Reproduce the comparison procedure: MaxRS rectangle → derive the length
        budget from the road length connecting its objects → run LCMSR → judge."""
        pairs = []
        maxrs_solver = MaxRSSolver(width=400.0, height=400.0)
        corpus = tiny_ny_dataset.corpus
        mapping = tiny_ny_dataset.mapping
        network = tiny_ny_dataset.network
        for query in workload[:3]:
            scores = tiny_ny_dataset.grid.score_objects(query.keywords, query.region)
            if not scores:
                continue
            points = {oid: corpus.get(oid).location() for oid in scores}
            maxrs = maxrs_solver.solve(points, scores, window=query.region)
            if maxrs.rectangle is None:
                continue
            terminal_nodes = [mapping.node_of(oid) for oid in maxrs.covered_ids]
            budget = max(steiner_tree_length(network, terminal_nodes), 500.0)
            lcmsr_query = LCMSRQuery.create(query.keywords, delta=budget, region=query.region)
            instance = build_instance(
                network, lcmsr_query, grid_index=tiny_ny_dataset.grid, mapping=mapping
            )
            lcmsr = TGENSolver(alpha=20.0).solve(instance)
            lcmsr_objects = sum(
                1
                for node_id in lcmsr.region.nodes
                for oid in mapping.objects_at(node_id)
                if oid in scores
            )
            pairs.append(
                (
                    RegionJudgement(lcmsr_objects, lcmsr.weight, True, max(lcmsr.length, 1.0)),
                    RegionJudgement(len(maxrs.covered_ids), maxrs.weight, False, budget),
                )
            )
        assert pairs, "the comparison pipeline must produce at least one judged pair"
        result = run_survey(pairs)
        assert result.queries == len(pairs)
        # The LCMSR answer should win at least half of the comparisons even on the
        # tiny dataset (the paper reports 90 % at full scale).
        assert result.lcmsr_preference_rate >= 0.5
