"""Tests for the vector-space model (paper Equations 1 and 2)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.objects.corpus import ObjectCorpus
from repro.objects.geoobject import GeoTextualObject
from repro.textindex.vector_space import (
    VectorSpaceModel,
    idf_weight,
    tf_weight,
)

from tests.conftest import make_small_corpus


class TestWeightFormulas:
    def test_idf_formula(self):
        assert idf_weight(100, 10) == pytest.approx(math.log(1 + 10.0))
        assert idf_weight(100, 100) == pytest.approx(math.log(2.0))

    def test_idf_zero_document_frequency(self):
        assert idf_weight(100, 0) == 0.0

    def test_tf_formula(self):
        assert tf_weight(1) == pytest.approx(1.0)
        assert tf_weight(3) == pytest.approx(1.0 + math.log(3))
        assert tf_weight(0) == 0.0

    def test_rarer_terms_get_higher_idf(self):
        assert idf_weight(1000, 5) > idf_weight(1000, 500)


class TestScoring:
    def test_zero_when_no_overlap(self):
        corpus = make_small_corpus()
        vsm = VectorSpaceModel(corpus)
        assert vsm.score_keywords(corpus.get(5), ["cafe"]) == 0.0

    def test_positive_when_overlap(self):
        corpus = make_small_corpus()
        vsm = VectorSpaceModel(corpus)
        assert vsm.score_keywords(corpus.get(0), ["cafe"]) > 0.0

    def test_matches_manual_equation_1(self):
        # Two-object corpus computed by hand against Equation 1.
        corpus = ObjectCorpus(
            [
                GeoTextualObject.create(0, 0, 0, ["cafe", "coffee"]),
                GeoTextualObject.create(1, 1, 1, ["cafe"]),
            ]
        )
        vsm = VectorSpaceModel(corpus)
        # Query {cafe}: w_Q = ln(1 + 2/2) = ln 2; W_Q = ln 2.
        # Object 0: tf weights 1 for both terms, W_o = sqrt(2), w_{o,cafe} = 1.
        expected = (math.log(2) * 1.0) / (math.log(2) * math.sqrt(2))
        assert vsm.score_keywords(0, ["cafe"]) == pytest.approx(expected)
        # Object 1: single term, W_o = 1 -> score = 1.
        assert vsm.score_keywords(1, ["cafe"]) == pytest.approx(1.0)

    def test_equation_2_decomposition(self):
        # score = (1 / W_Q) * sum over matched terms of w_{Q,t} * wto(t).
        corpus = make_small_corpus()
        vsm = VectorSpaceModel(corpus)
        query = vsm.query_vector(["cafe", "coffee"])
        obj = corpus.get(0)
        manual = sum(
            query.weights[t] * vsm.object_term_weight(0, t)
            for t in query.terms
        ) / query.norm
        assert vsm.score(obj, query) == pytest.approx(manual)

    def test_more_matched_keywords_scores_higher(self):
        corpus = make_small_corpus()
        vsm = VectorSpaceModel(corpus)
        one = vsm.score_keywords(0, ["cafe"])
        two = vsm.score_keywords(0, ["cafe", "coffee"])
        assert two > 0
        assert one > 0
        # With both terms matched the numerator gains a strictly positive term while
        # the query norm grows; the combined score must remain positive and the
        # object must outrank an object matching only one of the two keywords.
        other = vsm.score_keywords(1, ["cafe", "coffee"])  # object 1 has only "cafe"
        assert two > other

    def test_batch_scores_skips_zeroes(self):
        corpus = make_small_corpus()
        vsm = VectorSpaceModel(corpus)
        scores = vsm.batch_scores(list(corpus), ["cafe"])
        assert set(scores) == {0, 1}
        assert all(value > 0 for value in scores.values())

    def test_unknown_query_term_contributes_nothing(self):
        corpus = make_small_corpus()
        vsm = VectorSpaceModel(corpus)
        base = vsm.score_keywords(0, ["cafe"])
        with_unknown = vsm.score_keywords(0, ["cafe", "zzzunknown"])
        # The unknown term has zero IDF, so the score is unchanged.
        assert with_unknown == pytest.approx(base)

    def test_query_vector_dedupes_keywords(self):
        corpus = make_small_corpus()
        vsm = VectorSpaceModel(corpus)
        query = vsm.query_vector(["cafe", "Cafe", " cafe "])
        assert query.terms == ("cafe",)
        assert query.keyword_count == 1


class TestProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        descriptions=st.lists(
            st.lists(st.sampled_from(["a", "b", "c", "d", "e"]), min_size=1, max_size=6),
            min_size=2,
            max_size=12,
        ),
        query=st.lists(st.sampled_from(["a", "b", "c", "d", "e"]), min_size=1, max_size=3),
    )
    def test_scores_are_non_negative_and_bounded(self, descriptions, query):
        corpus = ObjectCorpus(
            [GeoTextualObject.create(i, i, i, terms) for i, terms in enumerate(descriptions)]
        )
        vsm = VectorSpaceModel(corpus)
        for obj in corpus:
            score = vsm.score_keywords(obj, query)
            assert score >= 0.0
            # Cosine-style normalisation keeps each object's score bounded by ~1.
            assert score <= 1.0 + 1e-9
