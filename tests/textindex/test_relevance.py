"""Tests for the relevance scorer (node weights) and its alternative scoring modes."""

from __future__ import annotations

import pytest

from repro.network.builders import grid_network
from repro.objects.corpus import ObjectCorpus
from repro.objects.geoobject import GeoTextualObject
from repro.objects.mapping import map_objects_to_network
from repro.textindex.relevance import LanguageModelScorer, RelevanceScorer, ScoringMode

from tests.conftest import make_small_corpus


@pytest.fixture
def mapped_small_corpus():
    corpus = make_small_corpus()
    network = grid_network(4, 4, spacing=100.0)
    mapping = map_objects_to_network(network, corpus)
    return corpus, network, mapping


class TestTextRelevanceMode:
    def test_node_weights_positive_only(self, mapped_small_corpus):
        corpus, _, mapping = mapped_small_corpus
        scorer = RelevanceScorer(corpus, mapping)
        weights = scorer.node_weights(["cafe"])
        assert weights
        assert all(value > 0 for value in weights.values())
        # Only the nodes of the two cafe objects carry weight.
        cafe_nodes = {mapping.node_of(0), mapping.node_of(1)}
        assert set(weights) == cafe_nodes

    def test_candidate_node_restriction(self, mapped_small_corpus):
        corpus, _, mapping = mapped_small_corpus
        scorer = RelevanceScorer(corpus, mapping)
        node_of_0 = mapping.node_of(0)
        weights = scorer.node_weights(["cafe"], candidate_nodes={node_of_0})
        assert set(weights) <= {node_of_0}

    def test_objects_on_same_node_sum(self):
        corpus = ObjectCorpus(
            [
                GeoTextualObject.create(0, 1.0, 1.0, ["cafe"]),
                GeoTextualObject.create(1, 1.5, 1.0, ["cafe"]),
            ]
        )
        network = grid_network(2, 2, spacing=100.0)
        mapping = map_objects_to_network(network, corpus)
        scorer = RelevanceScorer(corpus, mapping)
        single = scorer.object_score(corpus.get(0), ["cafe"])
        weights = scorer.node_weights(["cafe"])
        assert weights[mapping.node_of(0)] == pytest.approx(2 * single)


class TestRatingMode:
    def test_rating_used_when_matching(self, mapped_small_corpus):
        corpus, _, mapping = mapped_small_corpus
        scorer = RelevanceScorer(corpus, mapping, mode=ScoringMode.RATING_IF_MATCH)
        obj = corpus.get(0)
        assert scorer.object_score(obj, ["cafe"]) == obj.rating
        assert scorer.object_score(obj, ["museum"]) == 0.0


class TestLanguageModelMode:
    def test_invalid_smoothing_rejected(self, mapped_small_corpus):
        corpus, _, _ = mapped_small_corpus
        with pytest.raises(ValueError):
            LanguageModelScorer(corpus, smoothing=0.0)

    def test_irrelevant_objects_score_zero(self, mapped_small_corpus):
        corpus, _, mapping = mapped_small_corpus
        scorer = RelevanceScorer(corpus, mapping, mode=ScoringMode.LANGUAGE_MODEL)
        assert scorer.object_score(corpus.get(5), ["cafe"]) == 0.0

    def test_matching_objects_score_positive(self, mapped_small_corpus):
        corpus, _, mapping = mapped_small_corpus
        scorer = RelevanceScorer(corpus, mapping, mode=ScoringMode.LANGUAGE_MODEL)
        assert scorer.object_score(corpus.get(0), ["cafe"]) > 0.0

    def test_node_weights_nonempty(self, mapped_small_corpus):
        corpus, _, mapping = mapped_small_corpus
        scorer = RelevanceScorer(corpus, mapping, mode=ScoringMode.LANGUAGE_MODEL)
        weights = scorer.node_weights(["restaurant"])
        assert weights
        assert all(value > 0 for value in weights.values())

    def test_empty_keywords_score_zero(self, mapped_small_corpus):
        corpus, _, mapping = mapped_small_corpus
        scorer = RelevanceScorer(corpus, mapping, mode=ScoringMode.LANGUAGE_MODEL)
        assert scorer.object_score(corpus.get(0), []) == 0.0
