"""The sampled σ_v estimator: exactness escape hatch, determinism, CI sanity.

The sampler's contracts:

* **Escape hatch** — ``rate=1.0`` enumerates every stratum, so the estimate is
  the exact ``node_sums`` answer with zero variance.
* **Determinism** — the same ``(keywords, window, epsilon, seed)`` produces a
  bit-identical estimate however the index was obtained (fresh build, pickle
  round trip, artifact save/load) and whichever solver backend consumes it.
* **Unbiased-ish with honest CIs** — across seeds, the true σ_v lies inside the
  95% half-width at least ~90% of the time (the committed benchmark measures
  this at scale; here a fast smoke-level check).
"""

from __future__ import annotations

import pickle
import random

import numpy as np
import pytest

from repro.core.greedy import GreedySolver
from repro.core.instance import build_instance
from repro.core.query import LCMSRQuery
from repro.core.tgen import TGENSolver
from repro.exceptions import IndexError_
from repro.network.subgraph import Rectangle
from repro.textindex.columnar import WeightPipeline
from repro.textindex.relevance import ScoringMode

from tests.textindex.test_columnar import random_setup

KEYWORDS = ("cafe", "bar", "museum")


def pipeline_for(seed: int = 11, mode=ScoringMode.TEXT_RELEVANCE):
    corpus, network, mapping, columnar = random_setup(seed)
    return network, WeightPipeline(columnar, mode)


class TestEscapeHatch:
    @pytest.mark.parametrize("mode", list(ScoringMode))
    def test_full_rate_is_exact_with_zero_variance(self, mode):
        _, pipeline = pipeline_for(mode=mode)
        sampled = pipeline.node_sums_sampled(KEYWORDS, rate=1.0)
        exact = pipeline.node_sums(KEYWORDS)
        assert sampled.exact
        # Scoring only the selected rows must reproduce the full aggregation.
        np.testing.assert_allclose(sampled.sums, exact, rtol=0, atol=1e-12)
        assert np.all(sampled.variance == 0.0)
        assert np.all(sampled.ci_halfwidth() == 0.0)

    def test_tiny_epsilon_saturates_to_the_full_frame(self):
        _, pipeline = pipeline_for()
        # ceil(4/eps^2) far exceeds the 240-object frame -> full enumeration.
        sampled = pipeline.node_sums_sampled(KEYWORDS, epsilon=0.01)
        assert sampled.exact
        np.testing.assert_allclose(
            sampled.sums, pipeline.node_sums(KEYWORDS), rtol=0, atol=1e-12
        )

    def test_windowed_full_rate_matches_windowed_exact(self):
        _, pipeline = pipeline_for()
        window = Rectangle(20.0, 20.0, 220.0, 240.0)
        sampled = pipeline.node_weights_sampled(
            KEYWORDS, rate=1.0, window=window, node_window=window
        )
        exact = pipeline.node_weights(KEYWORDS, window=window, node_window=window)
        assert sampled.exact
        assert sampled.weights == exact

    def test_empty_window_yields_an_empty_estimate(self):
        _, pipeline = pipeline_for()
        window = Rectangle(10_000.0, 10_000.0, 10_010.0, 10_010.0)
        sampled = pipeline.node_sums_sampled(KEYWORDS, epsilon=0.3, window=window)
        assert sampled.frame_size == 0 and sampled.sample_size == 0
        assert np.all(sampled.sums == 0.0)


class TestValidation:
    def test_exactly_one_of_epsilon_and_rate(self):
        _, pipeline = pipeline_for()
        with pytest.raises(IndexError_):
            pipeline.node_sums_sampled(KEYWORDS)
        with pytest.raises(IndexError_):
            pipeline.node_sums_sampled(KEYWORDS, epsilon=0.1, rate=0.5)

    def test_ranges(self):
        _, pipeline = pipeline_for()
        for bad_eps in (0.0, 1.0, -0.2):
            with pytest.raises(IndexError_):
                pipeline.node_sums_sampled(KEYWORDS, epsilon=bad_eps)
        for bad_rate in (0.0, 1.5):
            with pytest.raises(IndexError_):
                pipeline.node_sums_sampled(KEYWORDS, rate=bad_rate)


class TestDeterminism:
    def test_same_seed_is_bit_identical(self):
        _, pipeline = pipeline_for()
        a = pipeline.node_sums_sampled(KEYWORDS, epsilon=0.3, rng=7)
        b = pipeline.node_sums_sampled(KEYWORDS, epsilon=0.3, rng=7)
        assert np.array_equal(a.sums, b.sums)
        assert np.array_equal(a.variance, b.variance)
        assert a.sample_size == b.sample_size

    def test_different_seeds_differ(self):
        # A dense corpus: strata exceed the per-stratum enumeration floor, so
        # the sampler genuinely subsamples and the draw depends on the seed.
        corpus, network, mapping, columnar = random_setup(11, num_objects=1200)
        pipeline = WeightPipeline(columnar, ScoringMode.TEXT_RELEVANCE)
        a = pipeline.node_sums_sampled(KEYWORDS, epsilon=0.3, rng=7)
        b = pipeline.node_sums_sampled(KEYWORDS, epsilon=0.3, rng=8)
        assert not a.exact and not b.exact
        # Not a hard guarantee in general, but on this corpus the draws differ.
        assert not np.array_equal(a.sums, b.sums)

    def test_identical_across_pickle_round_trip(self):
        corpus, network, mapping, columnar = random_setup(11)
        restored = pickle.loads(pickle.dumps(columnar))
        a = WeightPipeline(columnar, ScoringMode.TEXT_RELEVANCE)
        b = WeightPipeline(restored, ScoringMode.TEXT_RELEVANCE)
        wa = a.node_weights_sampled(KEYWORDS, epsilon=0.3, rng=5)
        wb = b.node_weights_sampled(KEYWORDS, epsilon=0.3, rng=5)
        assert wa.weights == wb.weights
        assert wa.variance == wb.variance

    @pytest.mark.parametrize("solver", [GreedySolver(), TGENSolver()], ids=lambda s: s.name)
    def test_identical_across_dict_and_dense_backends(self, solver):
        network, pipeline = pipeline_for()
        query = LCMSRQuery.create(KEYWORDS, delta=120.0)
        instance = build_instance(
            network.frozen_view() if hasattr(network, "frozen_view") else network,
            query,
            pipeline=pipeline,
            sample_epsilon=0.3,
            sample_seed=5,
        )
        dict_result = solver.solve(instance.with_backend("dict"))
        dense_result = solver.solve(instance.with_backend("dense"))
        assert dict_result.region.nodes == dense_result.region.nodes
        assert dict_result.weight == dense_result.weight

    def test_sampled_instance_carries_the_sampling_record(self):
        network, pipeline = pipeline_for()
        query = LCMSRQuery.create(KEYWORDS, delta=120.0)
        instance = build_instance(
            network, query, pipeline=pipeline, sample_epsilon=0.3, sample_seed=5
        )
        assert instance.sampling is not None
        assert instance.weights == instance.sampling.weights
        exact_instance = build_instance(network, query, pipeline=pipeline)
        assert exact_instance.sampling is None


class TestEstimatorQuality:
    def test_estimates_are_nonnegative_and_variance_finite(self):
        _, pipeline = pipeline_for()
        sampled = pipeline.node_sums_sampled(KEYWORDS, epsilon=0.4, rng=3)
        assert np.all(sampled.sums >= 0.0)
        assert np.all(np.isfinite(sampled.variance))
        assert np.all(sampled.variance >= 0.0)

    def test_ci_covers_the_truth_for_most_seeds(self):
        """Smoke-level CI coverage: ≥ 80% of (seed, node) pairs within ±CI.

        The committed benchmark (benchmarks/bench_anytime.py) measures the
        coverage criterion (≥ 90%) at scale; this fast check guards the
        estimator against gross mis-calibration (e.g. a dropped FPC term).
        """
        _, pipeline = pipeline_for()
        exact = pipeline.node_sums(KEYWORDS)
        heavy = np.flatnonzero(exact > np.percentile(exact[exact > 0], 50))
        covered = 0
        total = 0
        for seed in range(20):
            sampled = pipeline.node_sums_sampled(KEYWORDS, epsilon=0.35, rng=seed)
            half = sampled.ci_halfwidth()
            for pos in heavy:
                total += 1
                if abs(sampled.sums[pos] - exact[pos]) <= half[pos] + 1e-12:
                    covered += 1
        assert total > 0
        assert covered / total >= 0.8

    def test_region_ci_sums_member_variances(self):
        _, pipeline = pipeline_for()
        sampled = pipeline.node_weights_sampled(KEYWORDS, epsilon=0.35, rng=2)
        nodes = list(sampled.weights)[:3]
        expected = sum(sampled.variance[n] for n in nodes)
        if expected > 0.0:
            assert sampled.region_ci(nodes) == pytest.approx(
                1.96 * expected ** 0.5
            )
        assert sampled.region_ci([]) == 0.0

    def test_mean_over_seeds_approaches_the_truth(self):
        """HT unbiasedness smoke check on the total mass."""
        _, pipeline = pipeline_for()
        exact_total = float(pipeline.node_sums(KEYWORDS).sum())
        estimates = [
            float(pipeline.node_sums_sampled(KEYWORDS, epsilon=0.35, rng=s).sums.sum())
            for s in range(24)
        ]
        mean = sum(estimates) / len(estimates)
        assert mean == pytest.approx(exact_total, rel=0.15)
