"""Tests for the tokenizer."""

from __future__ import annotations

from repro.textindex.tokenizer import DEFAULT_STOP_WORDS, tokenize, tokenize_all


class TestTokenize:
    def test_lowercase_and_split(self):
        assert tokenize("Joe's Pizza & Pasta") == ["joe", "s", "pizza", "pasta"]

    def test_stop_words_removed(self):
        assert tokenize("the cafe on the corner") == ["cafe", "corner"]

    def test_custom_stop_words(self):
        assert tokenize("the cafe", stop_words=set()) == ["the", "cafe"]

    def test_min_length_filter(self):
        assert tokenize("a b cd efg", stop_words=set(), min_length=2) == ["cd", "efg"]

    def test_duplicates_preserved(self):
        assert tokenize("coffee coffee shop") == ["coffee", "coffee", "shop"]

    def test_numbers_kept(self):
        assert tokenize("7-eleven 24h") == ["7", "eleven", "24h"]

    def test_empty_string(self):
        assert tokenize("") == []
        assert tokenize("   \t\n") == []

    def test_default_stop_words_are_lowercase(self):
        assert all(word == word.lower() for word in DEFAULT_STOP_WORDS)


class TestTokenizeAll:
    def test_batch(self):
        out = tokenize_all(["Nice Cafe", "Best Pizza in Town"])
        assert out == [["nice", "cafe"], ["best", "pizza", "town"]]
