"""Randomized parity suite: columnar σ_v pipeline vs the object-loop reference.

The columnar scoring index promises *bit-identical* node weights — same values,
same dict iteration order — as the object-loop reference backend for all three
scoring modes, windowed and window-less, and therefore byte-identical solver
results on top of either backend. This suite checks that promise on seeded random
corpora (including zero-rating objects, empty descriptions, unknown query terms
and duplicated/odd-case raw keywords).
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro.core.app import APPSolver
from repro.core.exact import ExactSolver
from repro.core.greedy import GreedySolver
from repro.core.instance import build_instance
from repro.core.query import LCMSRQuery
from repro.core.tgen import TGENSolver
from repro.exceptions import IndexError_
from repro.network.builders import grid_network
from repro.network.subgraph import Rectangle
from repro.objects.corpus import ObjectCorpus
from repro.objects.geoobject import GeoTextualObject
from repro.objects.mapping import map_objects_to_network
from repro.textindex.columnar import ColumnarScoringIndex, WeightPipeline
from repro.textindex.relevance import RelevanceScorer, ScoringMode
from repro.textindex.vector_space import VectorSpaceModel

VOCAB = [
    "cafe", "bar", "museum", "park", "sushi", "pizza", "shop", "gym",
    "bakery", "cinema", "library", "hotel",
]


def random_setup(seed: int, num_objects: int = 240, rows: int = 6, cols: int = 6):
    """A seeded random corpus + network + mapping + columnar index."""
    rng = random.Random(seed)
    objects = []
    for object_id in range(num_objects):
        terms = [rng.choice(VOCAB) for _ in range(rng.randint(0, 6))]
        objects.append(
            GeoTextualObject.create(
                object_id,
                rng.uniform(-20.0, 320.0),
                rng.uniform(-20.0, 320.0),
                terms,
                rating=rng.choice([0.0, 0.5, 1.0, 2.5, 4.8]),
            )
        )
    corpus = ObjectCorpus(objects)
    network = grid_network(rows, cols, spacing=300.0 / max(rows - 1, 1))
    mapping = map_objects_to_network(network, corpus)
    columnar = ColumnarScoringIndex.build(corpus, mapping, network.coords)
    return corpus, network, mapping, columnar


def random_keywords(rng: random.Random):
    count = rng.randint(1, 4)
    kws = [rng.choice(VOCAB + ["nosuchterm", "alsoabsent"]) for _ in range(count)]
    return tuple(dict.fromkeys(kws))


def random_window(rng: random.Random):
    x0 = rng.uniform(-30.0, 200.0)
    y0 = rng.uniform(-30.0, 200.0)
    return Rectangle(x0, y0, x0 + rng.uniform(40.0, 220.0), y0 + rng.uniform(40.0, 220.0))


class TestNodeWeightParity:
    @pytest.mark.parametrize("mode", list(ScoringMode))
    @pytest.mark.parametrize("seed", [11, 29, 63])
    def test_bitwise_identity_windowed_and_windowless(self, mode, seed):
        corpus, network, mapping, columnar = random_setup(seed)
        scorer = RelevanceScorer(corpus, mapping, mode=mode, columnar=columnar)
        assert scorer.pipeline is not None
        rng = random.Random(seed * 7 + 1)
        for trial in range(8):
            keywords = random_keywords(rng)
            window = None if trial % 2 == 0 else random_window(rng)
            reference = scorer.node_weights(keywords, window=window, backend="reference")
            columnar_weights = scorer.node_weights(keywords, window=window)
            # Bitwise identity, including the dict iteration order the solvers see.
            assert list(reference.items()) == list(columnar_weights.items())

    @pytest.mark.parametrize("mode", list(ScoringMode))
    def test_candidate_node_restriction_matches(self, mode):
        corpus, network, mapping, columnar = random_setup(5)
        scorer = RelevanceScorer(corpus, mapping, mode=mode, columnar=columnar)
        rng = random.Random(99)
        all_nodes = [node.node_id for node in network.nodes()]
        candidates = set(rng.sample(all_nodes, len(all_nodes) // 2))
        keywords = ("cafe", "bar", "museum")
        reference = scorer.node_weights(
            keywords, candidate_nodes=candidates, backend="reference"
        )
        fast = scorer.node_weights(keywords, candidate_nodes=candidates)
        assert list(reference.items()) == list(fast.items())

    def test_instance_node_window_equals_window_graph_restriction(self):
        corpus, network, mapping, columnar = random_setup(17)
        scorer = RelevanceScorer(corpus, mapping, columnar=columnar)
        pipeline = scorer.pipeline
        window = Rectangle(40.0, 40.0, 230.0, 210.0)
        window_nodes = {n.node_id for n in network.nodes() if window.contains(n.x, n.y)}
        reference = scorer.node_weights(
            ("cafe", "sushi"), candidate_nodes=window_nodes, window=window,
            backend="reference",
        )
        fast = pipeline.node_weights(("cafe", "sushi"), window=window, node_window=window)
        assert list(reference.items()) == list(fast.items())

    def test_unknown_terms_only_yield_empty(self):
        corpus, network, mapping, columnar = random_setup(3)
        for mode in ScoringMode:
            pipeline = WeightPipeline(columnar, mode)
            assert pipeline.node_weights(("nosuchterm",)) == {}

    def test_reference_backend_forced_without_columnar(self):
        corpus, network, mapping, _ = random_setup(3)
        scorer = RelevanceScorer(corpus, mapping)
        with pytest.raises(ValueError):
            scorer.node_weights(("cafe",), backend="columnar")
        with pytest.raises(ValueError):
            scorer.node_weights(("cafe",), backend="wat")


class TestSolverResultParity:
    @pytest.mark.parametrize("mode", list(ScoringMode))
    def test_solver_results_identical_on_both_backends(self, mode):
        corpus, network, mapping, columnar = random_setup(41, num_objects=200)
        scorer = RelevanceScorer(corpus, mapping, mode=mode, columnar=columnar)
        pipeline = scorer.pipeline
        rng = random.Random(4242)
        solvers = [GreedySolver(), TGENSolver(), APPSolver()]
        for trial in range(4):
            window = random_window(rng) if trial % 2 else None
            query = LCMSRQuery.create(
                random_keywords(rng), delta=rng.uniform(100.0, 400.0), region=window
            )
            fast = build_instance(network, query, pipeline=pipeline)
            reference = build_instance(network, query, scorer=scorer)
            assert list(fast.weights.items()) == list(reference.weights.items())
            for solver in solvers:
                a = solver.solve(fast)
                b = solver.solve(reference)
                assert a.region.nodes == b.region.nodes
                assert a.weight == b.weight  # byte-identical, not approx
                assert a.length == b.length

    def test_exact_solver_identical_on_small_window(self):
        corpus, network, mapping, columnar = random_setup(13, num_objects=120)
        scorer = RelevanceScorer(corpus, mapping, columnar=columnar)
        window = Rectangle(0.0, 0.0, 130.0, 130.0)
        query = LCMSRQuery.create(("cafe", "bar"), delta=120.0, region=window)
        fast = build_instance(network, query, pipeline=scorer.pipeline)
        reference = build_instance(network, query, scorer=scorer)
        a = ExactSolver().solve(fast)
        b = ExactSolver().solve(reference)
        assert a.region.nodes == b.region.nodes
        assert a.weight == b.weight

    def test_topk_identical(self):
        corpus, network, mapping, columnar = random_setup(23, num_objects=180)
        scorer = RelevanceScorer(corpus, mapping, columnar=columnar)
        query = LCMSRQuery.create(("cafe", "pizza"), delta=250.0, k=3)
        fast = build_instance(network, query, pipeline=scorer.pipeline)
        reference = build_instance(network, query, scorer=scorer)
        a = TGENSolver().solve_topk(fast, 3)
        b = TGENSolver().solve_topk(reference, 3)
        assert [r.region.nodes for r in a] == [r.region.nodes for r in b]
        assert [r.weight for r in a] == [r.weight for r in b]


class TestVectorSpaceFastPath:
    def test_batch_scores_bitwise_identical(self):
        corpus, network, mapping, columnar = random_setup(31)
        reference_vsm = VectorSpaceModel(corpus)
        fast_vsm = VectorSpaceModel(corpus)
        fast_vsm.attach_columnar(columnar)
        ids = list(corpus.object_ids())
        for keywords in (["cafe"], ["BAR", " sushi ", "bar"], ["nosuchterm"]):
            slow = reference_vsm.batch_scores(ids, keywords)
            fast = fast_vsm.batch_scores(ids, keywords)
            assert slow == fast


class TestColumnarStructure:
    def test_shapes_and_lookup(self):
        corpus, network, mapping, columnar = random_setup(2)
        assert columnar.num_objects == len(corpus)
        assert columnar.num_terms == corpus.vocabulary_size()
        assert columnar.num_postings == sum(
            len(obj.keywords) for obj in corpus
        )
        assert columnar.terms == tuple(sorted(corpus.vocabulary()))
        for term in columnar.terms:
            assert columnar.document_frequency(term) == corpus.document_frequency(term)
        assert columnar.document_frequency("nosuchterm") == 0
        # node → object CSR covers every mapped object exactly once
        total = sum(
            len(columnar.object_rows_at_node(pos)) for pos in range(columnar.num_nodes)
        )
        assert total == mapping.num_mapped
        for object_id in list(corpus.object_ids())[:20]:
            row = columnar.object_row(object_id)
            assert int(columnar.object_ids[row]) == object_id

    def test_pickle_round_trip_preserves_parity(self):
        corpus, network, mapping, columnar = random_setup(8)
        restored = pickle.loads(pickle.dumps(columnar))
        a = WeightPipeline(columnar, ScoringMode.TEXT_RELEVANCE)
        b = WeightPipeline(restored, ScoringMode.TEXT_RELEVANCE)
        assert a.node_weights(("cafe", "bar")) == b.node_weights(("cafe", "bar"))

    def test_lm_smoothing_mismatch_rejected(self):
        corpus, network, mapping, columnar = random_setup(8)
        with pytest.raises(IndexError_):
            WeightPipeline(columnar, ScoringMode.LANGUAGE_MODEL, lm_smoothing=0.5)
        # ... and a scorer with a different smoothing keeps the loop backend.
        scorer = RelevanceScorer(
            corpus, mapping, mode=ScoringMode.LANGUAGE_MODEL,
            language_model_smoothing=0.5,
        )
        scorer.attach_columnar(columnar)
        assert scorer.pipeline is None

    def test_invalid_smoothing_rejected_at_build(self):
        corpus, network, mapping, _ = random_setup(8)
        with pytest.raises(IndexError_):
            ColumnarScoringIndex.build(corpus, mapping, network.coords, lm_smoothing=1.5)


class TestQueryNormalisation:
    def test_direct_construction_normalises(self):
        query = LCMSRQuery(keywords=("Cafe", " cafe ", "BAR"), delta=5.0)
        assert query.keywords == ("cafe", "bar")

    def test_create_normalises(self):
        query = LCMSRQuery.create(["Cafe", " cafe ", "BAR"], delta=5.0)
        assert query.keywords == ("cafe", "bar")

    def test_list_input_becomes_tuple(self):
        query = LCMSRQuery(keywords=["cafe"], delta=5.0)  # type: ignore[arg-type]
        assert query.keywords == ("cafe",)
