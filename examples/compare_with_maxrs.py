"""Comparison with fixed-rectangle retrieval (the paper's Section 7.5 study).

Earlier work answers "where are the interesting places?" with a fixed-size rectangle
(the maximum range-sum query, MaxRS). This example runs both answers side by side on
the same dataset and query keywords:

1. find the best 500 m x 500 m MaxRS rectangle,
2. derive a comparable LCMSR length budget — the minimum road length needed to connect
   the rectangle's relevant objects (the paper's procedure),
3. run the LCMSR query (TGEN) with that budget, and
4. report coverage, connectivity and the verdict of the simulated annotator panel.

Run with:  python examples/compare_with_maxrs.py
"""

from __future__ import annotations

from repro import LCMSREngine, MaxRSSolver, build_ny_like
from repro.core import LCMSRQuery, TGENSolver, build_instance
from repro.datasets.queries import generate_workload
from repro.evaluation.survey import RegionJudgement, run_survey
from repro.network.shortest_path import steiner_tree_length


def main() -> None:
    dataset = build_ny_like()
    engine = LCMSREngine(dataset.network, dataset.corpus)
    maxrs = MaxRSSolver(width=500.0, height=500.0)
    tgen = TGENSolver()

    queries = generate_workload(
        dataset, num_queries=6, num_keywords=2, delta=2000.0, area_km2=4.0, seed=2014
    )

    pairs = []
    for query in queries:
        # Score the relevant objects inside the query window through the grid index.
        scores = dataset.grid.score_objects(query.keywords, query.region)
        if not scores:
            continue
        points = {oid: dataset.corpus.get(oid).location() for oid in scores}
        rectangle_answer = maxrs.solve(points, scores, window=query.region)
        if rectangle_answer.rectangle is None:
            continue

        # The paper's budget: road length connecting the rectangle's relevant objects.
        terminals = [dataset.mapping.node_of(oid) for oid in rectangle_answer.covered_ids]
        budget = max(steiner_tree_length(dataset.network, terminals), 500.0)

        lcmsr_query = LCMSRQuery.create(query.keywords, delta=budget, region=query.region)
        instance = build_instance(
            dataset.network, lcmsr_query, grid_index=dataset.grid, mapping=dataset.mapping
        )
        lcmsr_answer = tgen.solve(instance)
        lcmsr_objects = sum(
            1
            for node_id in lcmsr_answer.region.nodes
            for oid in dataset.mapping.objects_at(node_id)
            if oid in scores
        )

        print(f"query {query.keywords}  (budget {budget:.0f} m)")
        print(f"  MaxRS : {len(rectangle_answer.covered_ids):3d} relevant objects, "
              f"weight {rectangle_answer.weight:6.2f}, fixed 500x500 m rectangle")
        print(f"  LCMSR : {lcmsr_objects:3d} relevant objects, "
              f"weight {lcmsr_answer.weight:6.2f}, connected street region "
              f"of {lcmsr_answer.length:.0f} m\n")

        pairs.append(
            (
                RegionJudgement(lcmsr_objects, lcmsr_answer.weight, True,
                                max(lcmsr_answer.length, 1.0)),
                RegionJudgement(len(rectangle_answer.covered_ids), rectangle_answer.weight,
                                False, budget),
            )
        )

    verdict = run_survey(pairs, num_annotators=5, majority=3)
    print(f"simulated 5-annotator panel over {verdict.queries} queries: "
          f"LCMSR preferred on {verdict.lcmsr_preference_rate:.0%} "
          f"(paper reports 90%)")


if __name__ == "__main__":
    main()
