"""Quickstart: index a dataset and ask one LCMSR query.

This is the smallest complete use of the library's public API:

1. build (or load) a road network and a set of geo-textual objects,
2. hand them to :class:`repro.LCMSREngine`, which maps objects to nodes and builds the
   grid + inverted-list index,
3. ask for the best region for a keyword set and a length budget, and
4. inspect the returned region.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import LCMSREngine, Rectangle, build_ny_like


def main() -> None:
    # A synthetic Manhattan-style dataset: ~2,500 road junctions, ~7,000 PoIs with
    # Google-Places-like keywords ("restaurant", "cafe", "bar", ...). To use your own
    # data, build a RoadNetwork (repro.network) and an ObjectCorpus (repro.objects)
    # and pass them to LCMSREngine exactly the same way.
    dataset = build_ny_like()
    print(f"dataset: {dataset.name}  {dataset.describe()}")

    engine = LCMSREngine(dataset.network, dataset.corpus)

    # "Where should I go to explore cafes and restaurants, if I am willing to walk
    # about two kilometres of streets in total?" — restricted to the part of town the
    # user cares about (the paper's region of interest Q.Λ), here a 2.5 km square
    # around the centre of the map.
    cx, cy = dataset.extent.center()
    downtown = Rectangle.from_center(cx, cy, 2500.0, 2500.0)
    result = engine.query(
        ["cafe", "restaurant"], delta=2000.0, region=downtown, algorithm="tgen"
    )

    region = result.region
    print(f"\nbest region found by {result.algorithm} "
          f"in {result.runtime_seconds * 1000:.0f} ms:")
    print(f"  total relevance weight : {region.weight:.3f}")
    print(f"  total street length    : {region.length:.0f} m (budget 2000 m)")
    print(f"  road-network nodes     : {region.num_nodes}")

    # The region is a connected subgraph of the road network; list the PoIs inside it.
    relevant = []
    for node_id in region.nodes:
        for object_id in engine.mapping.objects_at(node_id):
            obj = engine.corpus.get(object_id)
            if obj.contains_any(["cafe", "restaurant"]):
                relevant.append(obj)
    print(f"  relevant PoIs inside   : {len(relevant)}")
    for obj in relevant[:10]:
        print(f"    - object {obj.object_id} at ({obj.x:.0f}, {obj.y:.0f}): "
              f"{' '.join(sorted(obj.terms)[:4])}")

    # The same query answered by the other two algorithms of the paper.
    for algorithm in ("app", "greedy"):
        other = engine.query(
            ["cafe", "restaurant"], delta=2000.0, region=downtown, algorithm=algorithm
        )
        print(f"  {algorithm.upper():6s} weight={other.weight:.3f} "
              f"length={other.length:.0f} m  time={other.runtime_seconds * 1000:.0f} ms")


if __name__ == "__main__":
    main()
