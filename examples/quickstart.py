"""Quickstart: build an index artifact once, then load it and ask LCMSR queries.

This is the smallest complete use of the library's public API, in the build-once /
serve-many shape the serving stack is designed around:

1. build (or reuse) a persistent index artifact — normally done offline via
   ``python -m repro build --dataset ny --out artifacts/ny-quickstart``; this script
   builds it in-process on first run so it stays a one-file example,
2. load the artifact with :meth:`repro.LCMSREngine.from_artifact` (the CSR arrays
   come back memory-mapped; no index is rebuilt),
3. ask for the best region for a keyword set and a length budget, and
4. inspect the returned region.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from pathlib import Path

from repro import IndexBundle, LCMSREngine, Rectangle, build_ny_like

ARTIFACT = Path(__file__).resolve().parent / "artifacts" / "ny-quickstart"


def ensure_artifact() -> None:
    """Build the NY-like index artifact if it is not on disk yet.

    Equivalent to running::

        python -m repro build --dataset ny --out examples/artifacts/ny-quickstart

    once; every later run of this script (or any other process) just loads it.
    """
    if (ARTIFACT / "manifest.json").is_file():
        print(f"reusing artifact at {ARTIFACT}")
        return
    # A synthetic Manhattan-style dataset: ~2,500 road junctions, ~7,000 PoIs with
    # Google-Places-like keywords ("restaurant", "cafe", "bar", ...). To use your
    # own data, build a RoadNetwork (repro.network) and an ObjectCorpus
    # (repro.objects), wire them with repro.datasets.synthetic.assemble_dataset,
    # and save the bundle the same way.
    dataset = build_ny_like()
    print(f"dataset: {dataset.name}  {dataset.describe()}")
    IndexBundle.from_dataset(dataset).save(ARTIFACT)
    print(f"artifact written to {ARTIFACT}")


def main() -> None:
    ensure_artifact()

    # Engine-ready straight from disk: the offline build (object mapping, TF-IDF
    # model, grid + inverted lists, CSR freeze) is NOT repeated here.
    engine = LCMSREngine.from_artifact(ARTIFACT)
    print(f"engine ready from artifact in "
          f"{engine.bundle.build_seconds['load'] * 1000:.0f} ms: "
          f"{engine.bundle.describe()}")

    # "Where should I go to explore cafes and restaurants, if I am willing to walk
    # about two kilometres of streets in total?" — restricted to the part of town the
    # user cares about (the paper's region of interest Q.Λ), here a 2.5 km square
    # around the centre of the map.
    min_x, min_y, max_x, max_y = engine.graph_view.bounding_box()
    cx, cy = (min_x + max_x) / 2.0, (min_y + max_y) / 2.0
    downtown = Rectangle.from_center(cx, cy, 2500.0, 2500.0)
    result = engine.query(
        ["cafe", "restaurant"], delta=2000.0, region=downtown, algorithm="tgen"
    )

    region = result.region
    print(f"\nbest region found by {result.algorithm} "
          f"in {result.runtime_seconds * 1000:.0f} ms:")
    print(f"  total relevance weight : {region.weight:.3f}")
    print(f"  total street length    : {region.length:.0f} m (budget 2000 m)")
    print(f"  road-network nodes     : {region.num_nodes}")

    # The region is a connected subgraph of the road network; list the PoIs inside it.
    relevant = []
    for node_id in region.nodes:
        for object_id in engine.mapping.objects_at(node_id):
            obj = engine.corpus.get(object_id)
            if obj.contains_any(["cafe", "restaurant"]):
                relevant.append(obj)
    print(f"  relevant PoIs inside   : {len(relevant)}")
    for obj in relevant[:10]:
        print(f"    - object {obj.object_id} at ({obj.x:.0f}, {obj.y:.0f}): "
              f"{' '.join(sorted(obj.terms)[:4])}")

    # The same query answered by the other two algorithms of the paper.
    for algorithm in ("app", "greedy"):
        other = engine.query(
            ["cafe", "restaurant"], delta=2000.0, region=downtown, algorithm=algorithm
        )
        print(f"  {algorithm.upper():6s} weight={other.weight:.3f} "
              f"length={other.length:.0f} m  time={other.runtime_seconds * 1000:.0f} ms")


if __name__ == "__main__":
    main()
