"""Neighbourhood exploration: restrict the search to a region of interest and compare
the three algorithms (the scenario of the paper's Figures 17-19).

A user standing in one part of the city wants a walkable area with many cafes and
restaurants: the query carries a rectangular region of interest Q.Λ (their part of
town), a length budget Q.∆ (how much street they are willing to cover), and the
keywords. The example prints, for TGEN, APP and Greedy, how many relevant places each
returned region contains and how street-aligned ("L-shaped") the region is, and then
asks for the top-3 regions so the user has alternatives.

Run with:  python examples/explore_neighbourhood.py
"""

from __future__ import annotations

from repro import LCMSREngine, Rectangle, build_ny_like


def describe_region(engine: LCMSREngine, region, keywords) -> str:
    relevant = sum(
        1
        for node_id in region.nodes
        for object_id in engine.mapping.objects_at(node_id)
        if engine.corpus.get(object_id).contains_any(keywords)
    )
    shape = "single spot"
    if region.num_edges:
        # A tree region with many degree-1/2 nodes hugs the streets; report how many
        # street segments it spans as a proxy for the paper's "irregular shape" point.
        shape = f"{region.num_edges} street segments"
    return (
        f"weight={region.weight:6.2f}  length={region.length:7.0f} m  "
        f"relevant PoIs={relevant:3d}  shape: {shape}"
    )


def main() -> None:
    dataset = build_ny_like()
    engine = LCMSREngine(dataset.network, dataset.corpus)
    keywords = ["cafe", "restaurant"]

    # The user's part of town: a 2 km x 2 km window around the city centre.
    extent = dataset.extent
    cx, cy = extent.center()
    neighbourhood = Rectangle.from_center(cx, cy, 2000.0, 2000.0)
    budget = 1600.0  # meters of street the user is willing to explore

    print(f"query keywords : {keywords}")
    print(f"region of interest: {neighbourhood.width:.0f} x {neighbourhood.height:.0f} m window")
    print(f"length budget  : {budget:.0f} m\n")

    for algorithm in ("tgen", "app", "greedy"):
        result = engine.query(keywords, delta=budget, region=neighbourhood, algorithm=algorithm)
        print(f"{algorithm.upper():6s} {describe_region(engine, result.region, keywords)}  "
              f"({result.runtime_seconds * 1000:.0f} ms)")

    # Alternatives: the top-3 regions (Section 6.2 of the paper). Useful when the best
    # region is crowded or the user wants options in different directions.
    print("\ntop-3 alternatives (TGEN):")
    topk = engine.query_topk(keywords, delta=budget, k=3, region=neighbourhood, algorithm="tgen")
    for rank, entry in enumerate(topk, start=1):
        print(f"  #{rank} {describe_region(engine, entry.region, keywords)}")


if __name__ == "__main__":
    main()
