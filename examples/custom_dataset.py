"""Using the library on your own data: build a network and corpus by hand.

The other examples use the bundled synthetic datasets. This one shows the full manual
path — defining a small road network edge by edge, creating geo-textual objects from
raw strings, and running LCMSR and top-k queries over them — which is exactly what you
would do with data exported from OpenStreetMap or a places API. It also shows the
rating-based scoring mode the paper mentions as an alternative to text relevance.

Run with:  python examples/custom_dataset.py
"""

from __future__ import annotations

from repro import GeoTextualObject, LCMSREngine, ObjectCorpus, RoadNetwork
from repro.textindex.relevance import ScoringMode
from repro.textindex.tokenizer import tokenize


def build_network() -> RoadNetwork:
    """A toy waterfront district: a main street, two side streets and a pier."""
    network = RoadNetwork()
    coordinates = {
        1: (0, 0), 2: (200, 0), 3: (400, 0), 4: (600, 0), 5: (800, 0),     # main street
        6: (200, 150), 7: (400, 150), 8: (600, 150),                        # north side
        9: (400, -200), 10: (500, -350),                                    # the pier
    }
    for node_id, (x, y) in coordinates.items():
        network.add_node(node_id, float(x), float(y))
    for u, v in [(1, 2), (2, 3), (3, 4), (4, 5), (2, 6), (6, 7), (7, 8), (8, 4),
                 (3, 7), (3, 9), (9, 10)]:
        network.add_edge(u, v)  # edge length defaults to the Euclidean distance
    return network


def build_corpus() -> ObjectCorpus:
    """Objects created from free-text descriptions (tokenised) plus a rating."""
    raw = [
        (1, 190, 10, "Harbour Coffee Roasters - specialty coffee and cake", 4.6),
        (2, 210, -15, "The Dockside Cafe, brunch and coffee", 4.2),
        (3, 395, 12, "Pier Street Seafood Restaurant", 4.8),
        (4, 410, -8, "Nonna's Italian Restaurant and pizza", 4.4),
        (5, 605, 8, "Waterfront Wine Bar", 4.1),
        (6, 205, 160, "Old Town Pharmacy", 3.9),
        (7, 402, 158, "Gallery of Modern Art - museum shop and cafe", 4.7),
        (8, 598, 145, "Bookshop and reading cafe", 4.5),
        (9, 405, -195, "Fish market and oyster bar", 4.3),
        (10, 495, -340, "Lighthouse viewpoint", 4.9),
    ]
    corpus = ObjectCorpus()
    for object_id, x, y, description, rating in raw:
        corpus.add(GeoTextualObject.create(object_id, x, y, tokenize(description), rating))
    return corpus


def main() -> None:
    network = build_network()
    corpus = build_corpus()

    # Text-relevance scoring (the paper's default weight definition).
    engine = LCMSREngine(network, corpus, grid_resolution=8)
    result = engine.query(["cafe", "coffee"], delta=450.0, algorithm="tgen")
    print("text-relevance scoring, keywords ['cafe', 'coffee'], budget 450 m:")
    print(f"  region nodes {sorted(result.region.nodes)}  weight={result.weight:.3f} "
          f"length={result.length:.0f} m")

    # Top-2 alternatives.
    topk = engine.query_topk(["restaurant"], delta=300.0, k=2, algorithm="tgen")
    print("\ntop-2 'restaurant' regions with a 300 m budget:")
    for rank, entry in enumerate(topk, start=1):
        print(f"  #{rank} nodes {sorted(entry.region.nodes)}  weight={entry.weight:.3f}")

    # Rating-based scoring: an object's weight is its rating if it matches the query.
    rated_engine = LCMSREngine(
        network, corpus, grid_resolution=8, scoring_mode=ScoringMode.RATING_IF_MATCH
    )
    rated = rated_engine.query(["cafe", "coffee"], delta=450.0, algorithm="tgen")
    print("\nrating-based scoring for the same query:")
    print(f"  region nodes {sorted(rated.region.nodes)}  total rating={rated.weight:.1f}")

    # The exact oracle is practical on a network this small; use it to check TGEN.
    exact = engine.query(["cafe", "coffee"], delta=450.0, algorithm="exact")
    print(f"\nexact optimum weight {exact.weight:.3f} vs TGEN {result.weight:.3f}")


if __name__ == "__main__":
    main()
