"""Batched serving: answer many LCMSR queries concurrently with caching.

Builds the indexes once (an :class:`repro.IndexBundle` behind the engine), then
serves a hot workload — repeated keyword sets, a ∆-sweep — through
:class:`repro.QueryService`: a worker pool, an LRU result cache and a
problem-instance cache. Prints the service's accounting tables afterwards.

Run with:  python examples/batched_service.py
"""

from __future__ import annotations

from repro import LCMSREngine, QueryRequest, QueryService, Rectangle, build_ny_like
from repro.evaluation import format_query_timings, format_service_stats


def main() -> None:
    dataset = build_ny_like()
    engine = LCMSREngine(dataset.network, dataset.corpus)
    print(f"indexes built: {engine.bundle.describe()}")

    cx, cy = dataset.extent.center()
    downtown = Rectangle.from_center(cx, cy, 2500.0, 2500.0)

    # A hot workload: the same two keyword sets over and over (think many users
    # exploring the same neighbourhood), plus a budget sweep for one of them.
    requests = (
        [QueryRequest.create(["cafe", "restaurant"], 2000.0, region=downtown)] * 4
        + [QueryRequest.create(["bar", "pub"], 1500.0, region=downtown)] * 4
        + [QueryRequest.create(["cafe", "restaurant"], delta, region=downtown)
           for delta in (1000.0, 1500.0, 2500.0)]
    )

    with QueryService(engine, max_workers=4) as service:
        results = service.run_batch(requests)
        best = max(results, key=lambda r: r.weight)
        print(f"\n{len(results)} queries answered; best region: "
              f"weight={best.weight:.3f} length={best.length:.0f} m")
        print()
        print(format_service_stats(service.stats()))
        print()
        print(format_query_timings(service.stats()))


if __name__ == "__main__":
    main()
