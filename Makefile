PYTHON ?= python
export PYTHONPATH := src

.PHONY: test docs-check bench-service bench bench-smoke

# Tier-1 suite (includes the docs link/section check).
test:
	$(PYTHON) -m pytest -x -q

# Fail on broken intra-repo doc links or missing README sections.
docs-check:
	$(PYTHON) -m pytest tests/test_docs.py -q

# Serving-layer throughput benchmark (queries/sec vs batch size, cache hit rate).
bench-service:
	$(PYTHON) -m pytest benchmarks/bench_service_throughput.py -q -s

# All figure benchmarks (slow). bench_*.py is outside the default test file
# pattern, so the collection pattern is widened explicitly.
bench:
	$(PYTHON) -m pytest benchmarks/ -q -o python_files="bench_*.py"

# Every benchmark at its smallest configuration (1 query/setting, smallest
# datasets) under a hard time cap — a quick regression gate over the whole
# benchmark surface, including the network-backend comparison.
bench-smoke:
	REPRO_BENCH_SMOKE=1 timeout 1200 $(PYTHON) -m pytest benchmarks/ -q \
		-o python_files="bench_*.py"
