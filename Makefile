PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-parity test-mutation docs-check compile-check bench-service bench bench-smoke bench-json artifact-smoke shard-smoke compact-smoke anytime-smoke

# Tier-1 suite (includes the docs link/section check).
test:
	$(PYTHON) -m pytest -x -q

# Just the byte-identity parity suites: solver backend (dict vs dense) and
# bound-based pruning (on vs off). The fast gate to run after touching a
# solver hot loop or a skip branch.
test-parity:
	$(PYTHON) -m pytest tests/core/test_solver_backend_parity.py \
		tests/core/test_pruning_parity.py tests/core/test_backend_parity.py -q

# The mutable-world gate: the mutation-parity suite (overlay serving and
# post-compaction results byte-identical to a cold rebuild of the mutated
# corpus), the cache-staleness hammer tests, and the CLI mutate/compact round
# trips. Run after touching the overlay merge, the compactor or the caches.
test-mutation:
	$(PYTHON) -m pytest tests/service/test_generations.py \
		"tests/service/test_cli.py::TestMutateAndCompact" -q

# Fail on broken intra-repo doc links or missing README sections.
docs-check:
	$(PYTHON) -m pytest tests/test_docs.py -q

# Byte-compile the whole source tree: a fast syntax/import-shape gate that
# catches broken modules the test run might not import.
compile-check:
	$(PYTHON) -m compileall -q src

# Serving-layer throughput benchmark (queries/sec vs batch size, cache hit rate).
bench-service:
	$(PYTHON) -m pytest benchmarks/bench_service_throughput.py -q -s

# All figure benchmarks (slow). bench_*.py is outside the default test file
# pattern, so the collection pattern is widened explicitly.
bench:
	$(PYTHON) -m pytest benchmarks/ -q -o python_files="bench_*.py"

# Every benchmark at its smallest configuration (1 query/setting, smallest
# datasets) under a hard time cap — a quick regression gate over the whole
# benchmark surface, including the network-backend comparison and the
# artifact-persistence load-vs-rebuild check (bench_persist.py).
bench-smoke: compact-smoke anytime-smoke
	REPRO_BENCH_SMOKE=1 timeout 1200 $(PYTHON) -m pytest benchmarks/ -q \
		-o python_files="bench_*.py"

# Record the perf numbers of the refactor benchmarks as JSON — the columnar
# scoring pipeline (BENCH_scoring.json, bench_scoring.py), the dense solver
# substrate (BENCH_solver.json, bench_solver_backend.py) and the bound-based
# pruning subsystem (BENCH_pruning.json, bench_pruning.py, including the
# skip/visit counters) — so the repo's performance trajectory is captured run
# over run. Runs at the default benchmark scale.
bench-json:
	REPRO_BENCH_JSON=BENCH_scoring.json $(PYTHON) -m pytest \
		benchmarks/bench_scoring.py -q -s -o python_files="bench_*.py"
	REPRO_BENCH_JSON=BENCH_solver.json $(PYTHON) -m pytest \
		benchmarks/bench_solver_backend.py -q -s -o python_files="bench_*.py"
	REPRO_BENCH_JSON=BENCH_pruning.json $(PYTHON) -m pytest \
		benchmarks/bench_pruning.py -q -s -o python_files="bench_*.py"
	REPRO_BENCH_JSON=BENCH_service.json $(PYTHON) -m pytest \
		benchmarks/bench_service_throughput.py::test_bench_process_scaling \
		-q -s -o python_files="bench_*.py"
	REPRO_BENCH_JSON=BENCH_generations.json $(PYTHON) -m pytest \
		benchmarks/bench_generations.py -q -s -o python_files="bench_*.py"
	REPRO_BENCH_JSON=BENCH_artifact.json $(PYTHON) -m pytest \
		benchmarks/bench_artifact_scale.py -q -s -o python_files="bench_*.py"
	REPRO_BENCH_JSON=BENCH_anytime.json $(PYTHON) -m pytest \
		benchmarks/bench_anytime.py -q -s -o python_files="bench_*.py"

# End-to-end artifact gate through the CLI: build a small artifact, verify and
# reload it, and answer one query per solver (exact gets a small window so its
# enumeration stays tiny). Leaves no files behind.
ARTIFACT_SMOKE_DIR := .artifact-smoke
artifact-smoke:
	rm -rf $(ARTIFACT_SMOKE_DIR)
	$(PYTHON) -m repro build --dataset ny --rows 16 --cols 16 --objects 500 \
		--clusters 6 --seed 3 --out $(ARTIFACT_SMOKE_DIR)/ny
	$(PYTHON) -m repro info $(ARTIFACT_SMOKE_DIR)/ny --verify
	for alg in app tgen greedy; do \
		$(PYTHON) -m repro query $(ARTIFACT_SMOKE_DIR)/ny \
			--keywords cafe,restaurant --delta 800 --algorithm $$alg || exit 1; \
	done
	$(PYTHON) -m repro query $(ARTIFACT_SMOKE_DIR)/ny --keywords cafe \
		--delta 500 --region 100,100,450,450 --algorithm exact
	$(PYTHON) -m repro serve-batch $(ARTIFACT_SMOKE_DIR)/ny --synthesize 8 \
		--delta 800 --workers 2 --repeat 2
	rm -rf $(ARTIFACT_SMOKE_DIR)

# End-to-end mutable-world gate through the CLI: build a small artifact,
# record mutations in the delta log, answer a query from the merged (overlay)
# world, compact into gen-0001, verify the new generation's checksums, and
# answer one query per solver from it (exact gets a small window so its
# enumeration stays tiny). Leaves no files behind.
COMPACT_SMOKE_DIR := .compact-smoke
compact-smoke:
	rm -rf $(COMPACT_SMOKE_DIR)
	$(PYTHON) -m repro build --dataset ny --rows 16 --cols 16 --objects 500 \
		--clusters 6 --seed 3 --out $(COMPACT_SMOKE_DIR)/ny
	$(PYTHON) -m repro mutate $(COMPACT_SMOKE_DIR)/ny \
		--add '{"id": 90001, "x": 350.0, "y": 350.0, "keywords": ["cafe", "bar"], "rating": 2.5}' \
		--set-rating 3=4.5 --remove 7
	$(PYTHON) -m repro query $(COMPACT_SMOKE_DIR)/ny \
		--keywords cafe,restaurant --delta 800
	$(PYTHON) -m repro compact $(COMPACT_SMOKE_DIR)/ny
	$(PYTHON) -m repro info $(COMPACT_SMOKE_DIR)/ny/gen-0001 --verify
	for alg in app tgen greedy; do \
		$(PYTHON) -m repro query $(COMPACT_SMOKE_DIR)/ny \
			--keywords cafe,restaurant --delta 800 --algorithm $$alg || exit 1; \
	done
	$(PYTHON) -m repro query $(COMPACT_SMOKE_DIR)/ny --keywords cafe \
		--delta 500 --region 100,100,450,450 --algorithm exact
	rm -rf $(COMPACT_SMOKE_DIR)

# End-to-end policy gate through the CLI: build a small artifact, answer one
# query per solver under each service policy, assert the exact policy answers
# identically to the policy-free path (all lines but the runtime one), check
# every sampled answer prints its 95% CI line, and run mixed-policy batches
# through serve-batch. Leaves no files behind.
ANYTIME_SMOKE_DIR := .anytime-smoke
anytime-smoke:
	rm -rf $(ANYTIME_SMOKE_DIR)
	$(PYTHON) -m repro build --dataset ny --rows 16 --cols 16 --objects 500 \
		--clusters 6 --seed 3 --out $(ANYTIME_SMOKE_DIR)/ny
	for alg in app tgen greedy; do \
		$(PYTHON) -m repro query $(ANYTIME_SMOKE_DIR)/ny \
			--keywords cafe,restaurant --delta 800 --algorithm $$alg \
			| grep -v runtime > $(ANYTIME_SMOKE_DIR)/plain.txt || exit 1; \
		$(PYTHON) -m repro query $(ANYTIME_SMOKE_DIR)/ny \
			--keywords cafe,restaurant --delta 800 --algorithm $$alg \
			--policy exact \
			| grep -v runtime > $(ANYTIME_SMOKE_DIR)/exact.txt || exit 1; \
		diff $(ANYTIME_SMOKE_DIR)/plain.txt $(ANYTIME_SMOKE_DIR)/exact.txt \
			|| exit 1; \
		$(PYTHON) -m repro query $(ANYTIME_SMOKE_DIR)/ny \
			--keywords cafe,restaurant --delta 800 --algorithm $$alg \
			--policy 'anytime(60000)' || exit 1; \
		$(PYTHON) -m repro query $(ANYTIME_SMOKE_DIR)/ny \
			--keywords cafe,restaurant --delta 800 --algorithm $$alg \
			--policy 'sampled(0.3)' \
			| grep 'quality   : sampled (95% CI' || exit 1; \
	done
	$(PYTHON) -m repro query $(ANYTIME_SMOKE_DIR)/ny --keywords cafe \
		--delta 500 --region 100,100,450,450 --algorithm exact \
		--policy 'sampled(0.3)' | grep 'quality   : sampled (95% CI'
	$(PYTHON) -m repro serve-batch $(ANYTIME_SMOKE_DIR)/ny --synthesize 6 \
		--delta 800 --workers 2 --policy 'sampled(0.3)'
	$(PYTHON) -m repro serve-batch $(ANYTIME_SMOKE_DIR)/ny --synthesize 6 \
		--delta 800 --workers 2 --deadline-ms 60000
	rm -rf $(ANYTIME_SMOKE_DIR)

# End-to-end sharded-serving gate through the CLI: build an artifact with 4
# tile shards, verify every shard sub-artifact's manifest and checksums, and
# serve one cross-shard query per solver through the multi-process gateway.
# Leaves no files behind.
SHARD_SMOKE_DIR := .shard-smoke
shard-smoke:
	rm -rf $(SHARD_SMOKE_DIR)
	$(PYTHON) -m repro build --dataset ny --rows 16 --cols 16 --objects 500 \
		--clusters 6 --seed 3 --out $(SHARD_SMOKE_DIR)/ny --shards 4 --halo 600
	for shard in $(SHARD_SMOKE_DIR)/ny/shards/shard-*; do \
		$(PYTHON) -m repro info $$shard --verify || exit 1; \
	done
	printf '%s\n' \
		'{"keywords": ["cafe", "restaurant"], "delta": 800, "algorithm": "app"}' \
		'{"keywords": ["cafe", "restaurant"], "delta": 800, "algorithm": "tgen"}' \
		'{"keywords": ["cafe", "restaurant"], "delta": 800, "algorithm": "greedy"}' \
		'{"keywords": ["cafe"], "delta": 500, "region": [100, 100, 450, 450], "algorithm": "exact"}' \
		> $(SHARD_SMOKE_DIR)/requests.jsonl
	$(PYTHON) -m repro serve-batch $(SHARD_SMOKE_DIR)/ny \
		--requests $(SHARD_SMOKE_DIR)/requests.jsonl --processes 2
	rm -rf $(SHARD_SMOKE_DIR)
